//! Approximate top-K retrieval over item-tower embeddings.
//!
//! The two-tower split makes sub-linear retrieval possible: item vectors
//! depend only on the item, so they can be materialized once per model
//! publish and indexed offline. This crate provides a hand-rolled IVF-flat
//! index — a k-means coarse quantizer over the embedding pool, one inverted
//! list per centroid, an `nprobe`-controlled probe and an **exact**
//! dot-product re-rank of every probed candidate — plus a [`BruteForce`]
//! scan behind the same [`Retriever`] trait as the always-available recall
//! oracle.
//!
//! # Determinism
//!
//! Every ranking in this crate uses one strict total order: higher dot
//! first, ties broken by ascending item id ([`best_first`]). Because item
//! ids are distinct, the comparator has no true ties, so the k-bounded
//! selection in [`topk_select`] retains a *unique* winner set regardless of
//! candidate insertion order. Each item lives in exactly one inverted list
//! (argmin centroid, ties to the lowest centroid id), so probing **all**
//! lists scans the catalogue exactly once — the candidate multiset equals
//! the brute-force scan's, and with the order-insensitive selection the
//! full-probe IVF result is bit-identical to the oracle (scores, order and
//! tie-breaks included). Index construction itself is deterministic:
//! strided sampling, strided seeding and serial Lloyd iterations with no
//! RNG anywhere, so rebuilding from the same embeddings reproduces the
//! persisted index bit for bit.

use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::error::Error;
use std::fmt;
use std::sync::Arc;

use atnn_tensor::{dot, CowMatrix, CowQuantMatrix, Matrix, PreparedQuery, QuantizedMatrix};

/// The embedding pool a retriever scans: dense f32 rows, or int8 row
/// codes scored through the quantized dot kernel.
///
/// The f32 variant keeps every existing guarantee (probed candidates are
/// re-ranked with the *exact* dot, so approximation error is only missed
/// candidates). The int8 variant trades that for ~3.7× less resident
/// memory: every candidate dot is computed by
/// [`QuantizedMatrix::dot_prepared`], so scores are toleranced against
/// the f32 path — but the ranking itself stays deterministic, and a
/// full-probe scan over an int8 pool is still bit-identical to a
/// [`BruteForce`] scan over the *same* int8 pool.
#[derive(Debug, Clone)]
pub enum ItemPool {
    /// Dense f32 embeddings (row id == item id). Exact dots.
    F32(Arc<Matrix>),
    /// Int8-quantized embeddings with per-row scale/zero-point.
    Int8(Arc<QuantizedMatrix>),
    /// Chunked copy-on-write f32 embeddings — what delta publishes
    /// serve from. Row reads are bit-identical to the contiguous
    /// variant; only the storage layout differs.
    CowF32(Arc<CowMatrix>),
    /// Chunked copy-on-write int8 embeddings.
    CowInt8(Arc<CowQuantMatrix>),
}

impl From<Arc<Matrix>> for ItemPool {
    fn from(vecs: Arc<Matrix>) -> Self {
        ItemPool::F32(vecs)
    }
}

impl From<Arc<QuantizedMatrix>> for ItemPool {
    fn from(vecs: Arc<QuantizedMatrix>) -> Self {
        ItemPool::Int8(vecs)
    }
}

impl From<Arc<CowMatrix>> for ItemPool {
    fn from(vecs: Arc<CowMatrix>) -> Self {
        ItemPool::CowF32(vecs)
    }
}

impl From<Arc<CowQuantMatrix>> for ItemPool {
    fn from(vecs: Arc<CowQuantMatrix>) -> Self {
        ItemPool::CowInt8(vecs)
    }
}

impl ItemPool {
    /// Number of item rows.
    pub fn rows(&self) -> usize {
        match self {
            ItemPool::F32(m) => m.rows(),
            ItemPool::Int8(q) => q.rows(),
            ItemPool::CowF32(m) => m.rows(),
            ItemPool::CowInt8(q) => q.rows(),
        }
    }

    /// Embedding dimensionality.
    pub fn cols(&self) -> usize {
        match self {
            ItemPool::F32(m) => m.cols(),
            ItemPool::Int8(q) => q.cols(),
            ItemPool::CowF32(m) => m.cols(),
            ItemPool::CowInt8(q) => q.cols(),
        }
    }

    /// Resident bytes of the pool's embedding payload.
    pub fn storage_bytes(&self) -> usize {
        match self {
            ItemPool::F32(m) => m.len() * 4,
            ItemPool::Int8(q) => q.storage_bytes(),
            ItemPool::CowF32(m) => m.len() * 4,
            ItemPool::CowInt8(q) => q.storage_bytes(),
        }
    }

    /// True for the int8 variants.
    pub fn is_quantized(&self) -> bool {
        matches!(self, ItemPool::Int8(_) | ItemPool::CowInt8(_))
    }

    /// A per-query scorer: prepares (quantizes) the query once so each
    /// candidate costs one kernel call.
    fn scorer<'a>(&'a self, query: &'a [f32]) -> PoolScorer<'a> {
        match self {
            ItemPool::F32(m) => PoolScorer::F32 { vecs: m, query },
            ItemPool::Int8(q) => PoolScorer::Int8 { codes: q, prep: q.prepare(query) },
            ItemPool::CowF32(m) => PoolScorer::CowF32 { vecs: m, query },
            ItemPool::CowInt8(q) => PoolScorer::CowInt8 { codes: q, prep: q.prepare(query) },
        }
    }
}

enum PoolScorer<'a> {
    F32 { vecs: &'a Matrix, query: &'a [f32] },
    Int8 { codes: &'a QuantizedMatrix, prep: PreparedQuery },
    CowF32 { vecs: &'a CowMatrix, query: &'a [f32] },
    CowInt8 { codes: &'a CowQuantMatrix, prep: PreparedQuery },
}

impl PoolScorer<'_> {
    #[inline]
    fn score(&self, id: u32) -> f32 {
        match self {
            PoolScorer::F32 { vecs, query } => dot(vecs.row(id as usize), query),
            PoolScorer::Int8 { codes, prep } => codes.dot_prepared(id as usize, prep),
            PoolScorer::CowF32 { vecs, query } => dot(vecs.row(id as usize), query),
            PoolScorer::CowInt8 { codes, prep } => codes.dot_prepared(id as usize, prep),
        }
    }
}

/// A retrieval backend over a fixed pool of item embeddings.
///
/// Scores are **raw dot products** against the query vector (best first,
/// ties by ascending id) — callers that serve probabilities apply the
/// monotone `sigmoid(dot + bias)` to the winners only, keeping tie-breaks
/// in dot space where they are exact.
pub trait Retriever: Send + Sync {
    /// Number of indexed items (ids are `0..num_items`).
    fn num_items(&self) -> usize;

    /// Embedding dimensionality.
    fn dim(&self) -> usize;

    /// Top-`k` items by dot product with `query`, best first, ties by
    /// ascending id. Exact backends ignore `nprobe`.
    fn topk(&self, query: &[f32], k: usize, nprobe: usize) -> Vec<(u32, f32)> {
        self.topk_filtered(query, k, nprobe, &|_| true)
    }

    /// [`Retriever::topk`] restricted to ids for which `keep` returns
    /// true (e.g. "ids owned by this shard").
    fn topk_filtered(
        &self,
        query: &[f32],
        k: usize,
        nprobe: usize,
        keep: &dyn Fn(u32) -> bool,
    ) -> Vec<(u32, f32)>;
}

/// The retrieval order: higher score first, ties by ascending item id.
///
/// Identical to the serving plane's TopK comparator — NaN scores compare
/// as equal and fall through to the id tie-break, so the order stays total
/// over distinct ids no matter what the floats do.
#[inline]
pub fn best_first(a: &(u32, f32), b: &(u32, f32)) -> Ordering {
    b.1.partial_cmp(&a.1).unwrap_or(Ordering::Equal).then(a.0.cmp(&b.0))
}

/// Selects the top `k` of `ranked` under [`best_first`] with a k-bounded
/// worst-on-top heap — `O(n log k)`, and bit-identical to sorting the whole
/// input and truncating because the comparator is a strict total order over
/// distinct ids (the winner set is unique, so insertion order is
/// irrelevant).
pub fn topk_select(ranked: impl IntoIterator<Item = (u32, f32)>, k: usize) -> Vec<(u32, f32)> {
    if k == 0 {
        return Vec::new();
    }
    /// Max-heap wrapper whose "greatest" element is the *worst* candidate.
    struct Worst((u32, f32));
    impl PartialEq for Worst {
        fn eq(&self, other: &Self) -> bool {
            self.cmp(other) == Ordering::Equal
        }
    }
    impl Eq for Worst {}
    impl PartialOrd for Worst {
        fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
            Some(self.cmp(other))
        }
    }
    impl Ord for Worst {
        fn cmp(&self, other: &Self) -> Ordering {
            // `best_first` sorts better elements Less, so the heap max is
            // the worst retained candidate — exactly what gets evicted.
            best_first(&self.0, &other.0)
        }
    }
    let mut heap: BinaryHeap<Worst> = BinaryHeap::with_capacity(k + 1);
    for candidate in ranked {
        heap.push(Worst(candidate));
        if heap.len() > k {
            heap.pop();
        }
    }
    let mut out: Vec<(u32, f32)> = heap.into_iter().map(|w| w.0).collect();
    out.sort_by(best_first);
    out
}

/// Exact linear scan over the embedding pool — the recall oracle every
/// approximate backend is measured against, and the fallback when no index
/// has been built.
#[derive(Debug, Clone)]
pub struct BruteForce {
    pool: ItemPool,
}

impl BruteForce {
    /// Wraps a pool of item embeddings (row id == item id) — an
    /// `Arc<Matrix>`, an `Arc<QuantizedMatrix>`, or an [`ItemPool`].
    pub fn new(pool: impl Into<ItemPool>) -> Self {
        let pool = pool.into();
        assert!(pool.cols() > 0, "BruteForce: zero-dimensional embeddings");
        BruteForce { pool }
    }

    /// The scanned pool.
    pub fn pool(&self) -> &ItemPool {
        &self.pool
    }
}

impl Retriever for BruteForce {
    fn num_items(&self) -> usize {
        self.pool.rows()
    }

    fn dim(&self) -> usize {
        self.pool.cols()
    }

    fn topk_filtered(
        &self,
        query: &[f32],
        k: usize,
        _nprobe: usize,
        keep: &dyn Fn(u32) -> bool,
    ) -> Vec<(u32, f32)> {
        assert_eq!(query.len(), self.dim(), "query width mismatch");
        let scorer = self.pool.scorer(query);
        let candidates =
            (0..self.pool.rows() as u32).filter(|&id| keep(id)).map(|id| (id, scorer.score(id)));
        topk_select(candidates, k)
    }
}

/// Tunables for [`IvfFlatIndex::build`]. All fields are persisted with the
/// index so a rebuild-at-load reproduces the same structure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IvfParams {
    /// Number of k-means centroids / inverted lists.
    pub nlist: usize,
    /// Probe width used when the caller does not specify one.
    pub default_nprobe: usize,
    /// Training-sample budget per list (the quantizer trains on
    /// `nlist × sample_per_list` strided points, not the full pool).
    pub sample_per_list: usize,
    /// Lloyd iteration cap (converges earlier when assignments fix).
    pub max_iters: usize,
}

impl IvfParams {
    /// Defaults scaled to the pool: `nlist ≈ √n` (capped at 4096), probe
    /// width 8, 64 training samples per list, 10 Lloyd iterations.
    pub fn for_items(n: usize) -> Self {
        let nlist = ((n as f64).sqrt().ceil() as usize).clamp(1, 4096).min(n.max(1));
        IvfParams { nlist, default_nprobe: 8.min(nlist), sample_per_list: 64, max_iters: 10 }
    }
}

/// IVF-flat: a k-means coarse quantizer over the embedding pool with one
/// inverted list per centroid. Queries rank centroids by distance, probe
/// the `nprobe` nearest lists and re-rank every probed candidate with the
/// exact dot product, so approximation error is *only* missed candidates —
/// never wrong scores.
#[derive(Debug, Clone)]
pub struct IvfFlatIndex {
    params: IvfParams,
    /// `nlist × dim` centroid matrix.
    centroids: Matrix,
    /// `‖c‖²` per centroid; distance ranking uses `‖c‖² − 2⟨x, c⟩`, which
    /// orders like squared L2 (the `‖x‖²` term is query-constant).
    cnorms: Vec<f32>,
    /// Item ids per centroid, ascending within each list; every id in
    /// `0..n` appears in exactly one list.
    lists: Vec<Vec<u32>>,
    /// Inverse of `lists`: the list each id currently sits in. Kept so
    /// incremental re-assignment finds an id's old list in O(1); derived
    /// from `lists` at build/decode, never persisted.
    assignments: Vec<u32>,
    /// Ids whose assignment changed under [`IvfFlatIndex::reassign`]
    /// since the centroids were last trained. The coarse quantizer is
    /// frozen across deltas, so this is the staleness signal callers use
    /// to trigger a full k-means rebuild. Runtime-only: not persisted
    /// (an adopted index starts fresh at 0).
    drift: u64,
    pool: ItemPool,
}

/// Rows per assignment chunk: bounds the `chunk × nlist` distance matrix
/// to a few MB while leaving GEMM enough work to hit the tiled kernel.
const ASSIGN_CHUNK: usize = 8192;

impl IvfFlatIndex {
    /// Trains the coarse quantizer and assigns every item to its nearest
    /// centroid. Fully deterministic — see the crate docs.
    pub fn build(vecs: Arc<Matrix>, params: IvfParams) -> Self {
        let (n, d) = vecs.shape();
        assert!(n > 0 && d > 0, "IvfFlatIndex: empty embedding pool");
        let nlist = params.nlist.clamp(1, n);

        // Strided training sample: floor(i·n/s) is strictly increasing for
        // s ≤ n, so the ids are distinct and sweep the whole pool.
        let sample_len = (nlist * params.sample_per_list.max(1)).clamp(nlist, n);
        let sample_ids: Vec<u32> = (0..sample_len).map(|i| (i * n / sample_len) as u32).collect();
        let sample = vecs.select_rows(&sample_ids).expect("sample ids in range");

        // Seed centroids by striding the (already strided) sample.
        let seed_ids: Vec<u32> = (0..nlist).map(|j| sample_ids[j * sample_len / nlist]).collect();
        let mut centroids = vecs.select_rows(&seed_ids).expect("seed ids in range");
        let mut cnorms = centroid_norms(&centroids);

        // Serial Lloyd iterations on the sample; an unchanged assignment
        // is a fixed point, so stop there.
        let mut prev_assign: Vec<u32> = Vec::new();
        for _ in 0..params.max_iters {
            let assign = assign_chunked(&sample, &centroids, &cnorms);
            if assign == prev_assign {
                break;
            }
            let mut sums = vec![0.0f64; nlist * d];
            let mut counts = vec![0u64; nlist];
            for (i, &c) in assign.iter().enumerate() {
                let c = c as usize;
                counts[c] += 1;
                for (s, &v) in sums[c * d..(c + 1) * d].iter_mut().zip(sample.row(i)) {
                    *s += f64::from(v);
                }
            }
            for c in 0..nlist {
                // Empty clusters keep their previous centroid.
                if counts[c] == 0 {
                    continue;
                }
                for j in 0..d {
                    centroids.set(c, j, (sums[c * d + j] / counts[c] as f64) as f32);
                }
            }
            cnorms = centroid_norms(&centroids);
            prev_assign = assign;
        }

        // Final pass: bucket the whole pool. Iterating ids in order keeps
        // every inverted list ascending.
        let mut lists: Vec<Vec<u32>> = vec![Vec::new(); nlist];
        let mut assignments = vec![0u32; n];
        let mut start = 0usize;
        while start < n {
            let ids: Vec<u32> = (start..(start + ASSIGN_CHUNK).min(n)).map(|i| i as u32).collect();
            let chunk = vecs.select_rows(&ids).expect("chunk ids in range");
            for (off, &c) in assign_chunked(&chunk, &centroids, &cnorms).iter().enumerate() {
                lists[c as usize].push(ids[off]);
                assignments[ids[off] as usize] = c;
            }
            start += ASSIGN_CHUNK;
        }

        IvfFlatIndex {
            params: IvfParams { nlist, ..params },
            centroids,
            cnorms,
            lists,
            assignments,
            drift: 0,
            pool: ItemPool::F32(vecs),
        }
    }

    /// The build parameters (with `nlist` as actually clamped).
    pub fn params(&self) -> &IvfParams {
        &self.params
    }

    /// The pool candidates are re-ranked against.
    pub fn pool(&self) -> &ItemPool {
        &self.pool
    }

    /// Replaces the re-rank pool (typically swapping the f32 training
    /// pool for its int8-quantized serving twin after [`build`] — the
    /// coarse quantizer always trains on f32). The index structure
    /// (centroids, lists) is untouched, so probe order is identical;
    /// only candidate scores change representation.
    ///
    /// # Errors
    /// [`AnnError::Mismatch`] when `pool` has a different shape than the
    /// one the index was built over.
    ///
    /// [`build`]: IvfFlatIndex::build
    pub fn with_pool(mut self, pool: impl Into<ItemPool>) -> Result<Self, AnnError> {
        let pool = pool.into();
        if pool.rows() != self.pool.rows() {
            return Err(AnnError::Mismatch("item count differs from the indexed pool"));
        }
        if pool.cols() != self.pool.cols() {
            return Err(AnnError::Mismatch("dimension differs from the indexed pool"));
        }
        self.pool = pool;
        Ok(self)
    }

    /// Number of inverted lists.
    pub fn nlist(&self) -> usize {
        self.lists.len()
    }

    /// Probe width used when a caller passes `nprobe = 0`.
    pub fn default_nprobe(&self) -> usize {
        self.params.default_nprobe
    }

    /// Re-assigns the items in `ids` — whose embeddings changed to
    /// `vecs.row(k)` for `ids[k]` — under the **frozen** centroids:
    /// each changed vector is scored against the existing coarse
    /// quantizer with exactly the build-time assignment math (the
    /// `assign_chunked` pass: same GEMM, same serial argmin, same
    /// lowest-centroid tie-break), then moved between inverted lists
    /// (sorted remove + sorted insert, so every list stays ascending).
    ///
    /// Exactness: after this call the index structure is bit-identical
    /// to re-running the full build-time bucketing pass over the updated
    /// pool with the same centroids — unchanged items re-derive their
    /// existing assignment, changed items get the same argmin the full
    /// pass would compute. That makes an incremental update over a
    /// changed set `S` indistinguishable from a frozen-centroid full
    /// re-assignment whose input only differs on `S`.
    ///
    /// Returns how many items actually changed lists; the same count
    /// accumulates into [`IvfFlatIndex::drift`]. Centroids are *not*
    /// retrained — callers watch the drift fraction and rebuild past
    /// their threshold.
    ///
    /// The re-rank pool is untouched: callers swap it separately via
    /// [`IvfFlatIndex::with_pool`] (the pool and the index structure are
    /// published together in a snapshot).
    ///
    /// # Panics
    /// Panics on shape mismatches or an id out of range.
    pub fn reassign(&mut self, ids: &[u32], vecs: &Matrix) -> usize {
        assert_eq!(vecs.rows(), ids.len(), "reassign id/row count mismatch");
        assert_eq!(vecs.cols(), self.centroids.cols(), "reassign dimension mismatch");
        let n = self.assignments.len();
        let mut moved = 0usize;
        let mut start = 0usize;
        while start < ids.len() {
            let end = (start + ASSIGN_CHUNK).min(ids.len());
            let rows: Vec<u32> = (start..end).map(|i| i as u32).collect();
            let chunk = vecs.select_rows(&rows).expect("delta rows in range");
            for (off, &c) in
                assign_chunked(&chunk, &self.centroids, &self.cnorms).iter().enumerate()
            {
                let id = ids[start + off];
                assert!((id as usize) < n, "reassign: id {id} out of range ({n} items)");
                let old = self.assignments[id as usize];
                if old == c {
                    continue;
                }
                let old_list = &mut self.lists[old as usize];
                let at = old_list.binary_search(&id).expect("assignments track lists");
                old_list.remove(at);
                let new_list = &mut self.lists[c as usize];
                let at = new_list.binary_search(&id).expect_err("id cannot be in two lists");
                new_list.insert(at, id);
                self.assignments[id as usize] = c;
                moved += 1;
            }
            start = end;
        }
        self.drift += moved as u64;
        moved
    }

    /// Items whose list changed under [`IvfFlatIndex::reassign`] since
    /// the centroids were last trained (build or decode resets to 0).
    pub fn drift(&self) -> u64 {
        self.drift
    }

    /// [`IvfFlatIndex::drift`] as a fraction of the catalogue — the
    /// staleness signal for rebuild policies.
    pub fn drift_fraction(&self) -> f64 {
        self.drift as f64 / self.assignments.len().max(1) as f64
    }

    /// Centroid ids ranked nearest-first for `query` (ties to the lowest
    /// centroid id).
    fn rank_centroids(&self, query: &[f32]) -> Vec<u32> {
        let mut keyed: Vec<(u32, f32)> = (0..self.lists.len())
            .map(|c| (c as u32, self.cnorms[c] - 2.0 * dot(self.centroids.row(c), query)))
            .collect();
        keyed.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(Ordering::Equal).then(a.0.cmp(&b.0)));
        keyed.into_iter().map(|(c, _)| c).collect()
    }
}

impl Retriever for IvfFlatIndex {
    fn num_items(&self) -> usize {
        self.pool.rows()
    }

    fn dim(&self) -> usize {
        self.pool.cols()
    }

    fn topk_filtered(
        &self,
        query: &[f32],
        k: usize,
        nprobe: usize,
        keep: &dyn Fn(u32) -> bool,
    ) -> Vec<(u32, f32)> {
        assert_eq!(query.len(), self.dim(), "query width mismatch");
        let nprobe = if nprobe == 0 { self.params.default_nprobe } else { nprobe };
        let nprobe = nprobe.clamp(1, self.lists.len());
        let order = self.rank_centroids(query);
        let scorer = self.pool.scorer(query);
        let candidates = order[..nprobe]
            .iter()
            .flat_map(|&c| self.lists[c as usize].iter().copied())
            .filter(|&id| keep(id))
            .map(|id| (id, scorer.score(id)));
        topk_select(candidates, k)
    }
}

/// `‖c‖²` per centroid row.
fn centroid_norms(centroids: &Matrix) -> Vec<f32> {
    centroids.iter_rows().map(|c| dot(c, c)).collect()
}

/// Nearest-centroid assignment for a block of points, GEMM-assisted:
/// one `points @ centroidsᵀ` product, then a serial argmin per row over
/// `‖c‖² − 2⟨x, c⟩` with ties to the lowest centroid id.
fn assign_chunked(points: &Matrix, centroids: &Matrix, cnorms: &[f32]) -> Vec<u32> {
    let dots = points.matmul_nt(centroids).expect("assignment shapes agree");
    let mut out = Vec::with_capacity(points.rows());
    for i in 0..points.rows() {
        let row = dots.row(i);
        let mut best = 0usize;
        let mut best_key = cnorms[0] - 2.0 * row[0];
        for (c, (&norm, &d)) in cnorms.iter().zip(row).enumerate().skip(1) {
            let key = norm - 2.0 * d;
            if key < best_key {
                best = c;
                best_key = key;
            }
        }
        out.push(best as u32);
    }
    out
}

// ---------------------------------------------------------------------------
// Serialization
// ---------------------------------------------------------------------------

/// On-disk magic for a serialized IVF index blob.
pub const INDEX_MAGIC: [u8; 8] = *b"ATNNIVF1";
const INDEX_VERSION: u32 = 1;

/// Decode failures for a persisted index blob.
#[derive(Debug, PartialEq, Eq)]
pub enum AnnError {
    /// Structurally invalid blob (bad magic, truncation, trailing bytes,
    /// out-of-range ids, …) — the message names the first violation.
    Corrupt(&'static str),
    /// Payload bytes do not hash to the stored checksum.
    Checksum {
        /// Checksum stored in the blob header.
        expected: u64,
        /// Checksum of the payload as read.
        actual: u64,
    },
    /// The blob is self-consistent but was built over a different
    /// embedding pool than the one supplied.
    Mismatch(&'static str),
}

impl fmt::Display for AnnError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AnnError::Corrupt(what) => write!(f, "corrupt index blob: {what}"),
            AnnError::Checksum { expected, actual } => {
                write!(f, "index checksum mismatch: stored {expected:#x}, computed {actual:#x}")
            }
            AnnError::Mismatch(what) => write!(f, "index does not match embeddings: {what}"),
        }
    }
}

impl Error for AnnError {}

/// FNV-1a over a byte slice — local copy so the crate stays dependency-free.
fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

struct Reader<'a> {
    bytes: &'a [u8],
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize, what: &'static str) -> Result<&'a [u8], AnnError> {
        if self.bytes.len() < n {
            return Err(AnnError::Corrupt(what));
        }
        let (head, tail) = self.bytes.split_at(n);
        self.bytes = tail;
        Ok(head)
    }

    fn u32(&mut self, what: &'static str) -> Result<u32, AnnError> {
        Ok(u32::from_le_bytes(self.take(4, what)?.try_into().unwrap()))
    }

    fn u64(&mut self, what: &'static str) -> Result<u64, AnnError> {
        Ok(u64::from_le_bytes(self.take(8, what)?.try_into().unwrap()))
    }

    fn f32(&mut self, what: &'static str) -> Result<f32, AnnError> {
        Ok(f32::from_le_bytes(self.take(4, what)?.try_into().unwrap()))
    }
}

impl IvfFlatIndex {
    /// Serializes the index (magic, version, FNV-1a checksum, payload).
    /// The embedding pool itself is **not** persisted — the serving
    /// snapshot already carries it; [`IvfFlatIndex::decode`] re-attaches
    /// it and cross-checks the shape.
    pub fn encode(&self) -> Vec<u8> {
        let (n, d) = (self.pool.rows(), self.pool.cols());
        let mut payload = Vec::with_capacity(32 + self.centroids.len() * 4 + n * 4);
        payload.extend_from_slice(&(n as u64).to_le_bytes());
        payload.extend_from_slice(&(d as u32).to_le_bytes());
        payload.extend_from_slice(&(self.params.nlist as u32).to_le_bytes());
        payload.extend_from_slice(&(self.params.default_nprobe as u32).to_le_bytes());
        payload.extend_from_slice(&(self.params.sample_per_list as u32).to_le_bytes());
        payload.extend_from_slice(&(self.params.max_iters as u32).to_le_bytes());
        for &v in self.centroids.as_slice() {
            payload.extend_from_slice(&v.to_le_bytes());
        }
        for list in &self.lists {
            payload.extend_from_slice(&(list.len() as u32).to_le_bytes());
            for &id in list {
                payload.extend_from_slice(&id.to_le_bytes());
            }
        }
        let mut out = Vec::with_capacity(20 + payload.len());
        out.extend_from_slice(&INDEX_MAGIC);
        out.extend_from_slice(&INDEX_VERSION.to_le_bytes());
        out.extend_from_slice(&fnv1a64(&payload).to_le_bytes());
        out.extend_from_slice(&payload);
        out
    }

    /// Deserializes a blob produced by [`IvfFlatIndex::encode`] and
    /// re-attaches the embedding pool (f32 or quantized). Rejects
    /// corruption (checksum, truncation, trailing bytes), ids outside
    /// `0..n`, ids assigned to more than one list, and any shape
    /// disagreement with the supplied pool.
    pub fn decode(bytes: &[u8], pool: impl Into<ItemPool>) -> Result<Self, AnnError> {
        let pool = pool.into();
        let mut r = Reader { bytes };
        if r.take(8, "missing magic")? != INDEX_MAGIC {
            return Err(AnnError::Corrupt("bad magic"));
        }
        if r.u32("missing version")? != INDEX_VERSION {
            return Err(AnnError::Corrupt("unsupported index version"));
        }
        let expected = r.u64("missing checksum")?;
        let actual = fnv1a64(r.bytes);
        if expected != actual {
            return Err(AnnError::Checksum { expected, actual });
        }

        let n = r.u64("missing item count")? as usize;
        let d = r.u32("missing dimension")? as usize;
        if n != pool.rows() {
            return Err(AnnError::Mismatch("item count differs from the embedding pool"));
        }
        if d != pool.cols() || d == 0 {
            return Err(AnnError::Mismatch("dimension differs from the embedding pool"));
        }
        let nlist = r.u32("missing nlist")? as usize;
        if nlist == 0 || nlist > n {
            return Err(AnnError::Corrupt("nlist out of range"));
        }
        let default_nprobe = r.u32("missing default nprobe")? as usize;
        let sample_per_list = r.u32("missing sample budget")? as usize;
        let max_iters = r.u32("missing iteration cap")? as usize;

        let mut centroids = Matrix::zeros(nlist, d);
        for c in 0..nlist {
            for j in 0..d {
                centroids.set(c, j, r.f32("truncated centroids")?);
            }
        }

        let mut lists = Vec::with_capacity(nlist);
        let mut seen = vec![false; n];
        let mut assignments = vec![0u32; n];
        let mut total = 0usize;
        for c in 0..nlist {
            let len = r.u32("truncated list header")? as usize;
            if len > n - total {
                return Err(AnnError::Corrupt("list lengths exceed the catalogue"));
            }
            let mut list = Vec::with_capacity(len);
            for _ in 0..len {
                let id = r.u32("truncated list")?;
                if id as usize >= n {
                    return Err(AnnError::Corrupt("item id out of range"));
                }
                if std::mem::replace(&mut seen[id as usize], true) {
                    return Err(AnnError::Corrupt("item id assigned to two lists"));
                }
                // Ascending order is part of the format: the full-probe
                // bit-identity argument and the incremental update's
                // sorted remove/insert both rely on it.
                if list.last().is_some_and(|&prev| prev >= id) {
                    return Err(AnnError::Corrupt("inverted list not ascending"));
                }
                assignments[id as usize] = c as u32;
                list.push(id);
            }
            total += len;
            lists.push(list);
        }
        if total != n {
            return Err(AnnError::Corrupt("lists do not cover the catalogue"));
        }
        if !r.bytes.is_empty() {
            return Err(AnnError::Corrupt("trailing bytes"));
        }

        let cnorms = centroid_norms(&centroids);
        let params = IvfParams { nlist, default_nprobe, sample_per_list, max_iters };
        Ok(IvfFlatIndex { params, centroids, cnorms, lists, assignments, drift: 0, pool })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use atnn_tensor::Rng64;

    /// A clustered pool: `centers` Gaussian blobs plus noise, so IVF has
    /// real structure to find.
    fn clustered_pool(n: usize, d: usize, centers: usize, seed: u64) -> Arc<Matrix> {
        let mut rng = Rng64::seed_from_u64(seed);
        let centroid = Matrix::from_fn(centers, d, |_, _| rng.normal() * 4.0);
        let m = Matrix::from_fn(n, d, |i, j| centroid.get(i % centers, j) + rng.normal() * 0.3);
        Arc::new(m)
    }

    fn query(d: usize, seed: u64) -> Vec<f32> {
        let mut rng = Rng64::seed_from_u64(seed);
        (0..d).map(|_| rng.normal()).collect()
    }

    #[test]
    fn topk_select_matches_sort_truncate() {
        let mut rng = Rng64::seed_from_u64(7);
        for case in 0..50 {
            let n = 1 + rng.index(40);
            let ranked: Vec<(u32, f32)> = (0..n)
                .map(|i| (i as u32, (rng.index(5) as f32) - 2.0)) // coarse scores force ties
                .collect();
            let k = rng.index(n + 3);
            let mut reference = ranked.clone();
            reference.sort_by(best_first);
            reference.truncate(k);
            assert_eq!(topk_select(ranked, k), reference, "case {case}");
        }
    }

    #[test]
    fn full_probe_is_bit_identical_to_brute_force() {
        let pool = clustered_pool(500, 16, 12, 11);
        let params = IvfParams::for_items(pool.rows());
        let ivf = IvfFlatIndex::build(Arc::clone(&pool), params);
        let oracle = BruteForce::new(Arc::clone(&pool));
        let q = query(16, 99);
        let full = ivf.nlist();
        assert_eq!(ivf.topk(&q, 10, full), oracle.topk(&q, 10, 0));
        assert_eq!(ivf.topk(&q, 500, full), oracle.topk(&q, 500, 0));
    }

    #[test]
    fn recall_improves_with_nprobe_and_probe_is_subset_exact() {
        let pool = clustered_pool(2000, 16, 32, 3);
        let ivf = IvfFlatIndex::build(Arc::clone(&pool), IvfParams::for_items(pool.rows()));
        let oracle = BruteForce::new(Arc::clone(&pool));
        let q = query(16, 5);
        let exact = oracle.topk(&q, 10, 0);
        let approx = ivf.topk(&q, 10, 4);
        // Every approximate hit carries its exact score — approximation can
        // only *miss* candidates, never mis-score them.
        for hit in &approx {
            assert_eq!(hit.1, dot(pool.row(hit.0 as usize), &q), "score is exact");
        }
        let recall_lo = overlap(&ivf.topk(&q, 10, 1), &exact);
        let recall_hi = overlap(&ivf.topk(&q, 10, ivf.nlist()), &exact);
        assert!(recall_hi >= recall_lo, "recall is monotone at the extremes");
        assert_eq!(recall_hi, 10, "full probe is exact");
    }

    fn overlap(approx: &[(u32, f32)], exact: &[(u32, f32)]) -> usize {
        approx.iter().filter(|(id, _)| exact.iter().any(|(e, _)| e == id)).count()
    }

    #[test]
    fn filtered_retrieval_respects_the_filter() {
        let pool = clustered_pool(300, 8, 6, 21);
        let ivf = IvfFlatIndex::build(Arc::clone(&pool), IvfParams::for_items(pool.rows()));
        let oracle = BruteForce::new(Arc::clone(&pool));
        let q = query(8, 1);
        let keep = |id: u32| id % 3 == 1;
        let got = ivf.topk_filtered(&q, 20, ivf.nlist(), &keep);
        assert_eq!(got, oracle.topk_filtered(&q, 20, 0, &keep));
        assert!(got.iter().all(|(id, _)| keep(*id)));
    }

    #[test]
    fn encode_decode_round_trips_bit_identically() {
        let pool = clustered_pool(400, 12, 8, 17);
        let ivf = IvfFlatIndex::build(Arc::clone(&pool), IvfParams::for_items(pool.rows()));
        let blob = ivf.encode();
        let back = IvfFlatIndex::decode(&blob, Arc::clone(&pool)).unwrap();
        assert_eq!(back.params(), ivf.params());
        let q = query(12, 2);
        assert_eq!(back.topk(&q, 25, 3), ivf.topk(&q, 25, 3));
        assert_eq!(blob, back.encode(), "re-encode reproduces the blob");
    }

    #[test]
    fn decode_rejects_corruption_and_mismatch() {
        let pool = clustered_pool(200, 8, 4, 31);
        let ivf = IvfFlatIndex::build(Arc::clone(&pool), IvfParams::for_items(pool.rows()));
        let blob = ivf.encode();

        let mut flipped = blob.clone();
        *flipped.last_mut().unwrap() ^= 0x40;
        assert!(matches!(
            IvfFlatIndex::decode(&flipped, Arc::clone(&pool)),
            Err(AnnError::Checksum { .. })
        ));

        assert!(matches!(
            IvfFlatIndex::decode(&blob[..blob.len() - 3], Arc::clone(&pool)),
            Err(AnnError::Checksum { .. })
        ));

        let mut trailing = blob.clone();
        trailing.push(0);
        assert!(IvfFlatIndex::decode(&trailing, Arc::clone(&pool)).is_err());

        let other = clustered_pool(201, 8, 4, 31);
        assert!(matches!(IvfFlatIndex::decode(&blob, other), Err(AnnError::Mismatch(_))));

        let mut bad_magic = blob;
        bad_magic[0] ^= 1;
        assert!(matches!(
            IvfFlatIndex::decode(&bad_magic, pool),
            Err(AnnError::Corrupt("bad magic"))
        ));
    }

    #[test]
    fn rebuild_from_same_pool_is_deterministic() {
        let pool = clustered_pool(350, 8, 7, 13);
        let params = IvfParams::for_items(pool.rows());
        let a = IvfFlatIndex::build(Arc::clone(&pool), params);
        let b = IvfFlatIndex::build(Arc::clone(&pool), params);
        assert_eq!(a.encode(), b.encode());
    }

    #[test]
    fn quantized_full_probe_matches_quantized_brute_force_bitwise() {
        let pool = clustered_pool(600, 16, 10, 23);
        let codes = Arc::new(QuantizedMatrix::from_matrix(&pool));
        let ivf = IvfFlatIndex::build(Arc::clone(&pool), IvfParams::for_items(pool.rows()))
            .with_pool(Arc::clone(&codes))
            .unwrap();
        let oracle = BruteForce::new(codes);
        let q = query(16, 77);
        assert_eq!(ivf.topk(&q, 25, ivf.nlist()), oracle.topk(&q, 25, 0));
        let keep = |id: u32| id.is_multiple_of(2);
        assert_eq!(
            ivf.topk_filtered(&q, 25, ivf.nlist(), &keep),
            oracle.topk_filtered(&q, 25, 0, &keep)
        );
    }

    #[test]
    fn quantized_recall_tracks_the_f32_oracle() {
        // Same-probe comparison: quantized and f32 indexes share the same
        // centroids, so at any nprobe they scan *identical* candidate
        // sets and the only difference is int8 re-rank scores. That
        // isolates quantization error from IVF probe misses (which are a
        // property of the f32 index too, not of the codec).
        let pool = clustered_pool(4000, 16, 40, 9);
        let codes = Arc::new(QuantizedMatrix::from_matrix(&pool));
        let ivf_f = IvfFlatIndex::build(Arc::clone(&pool), IvfParams::for_items(pool.rows()));
        let ivf_q = ivf_f.clone().with_pool(codes).unwrap();
        let mut hits = 0usize;
        for seed in 0..20u64 {
            let q = query(16, 1000 + seed);
            let exact = ivf_f.topk(&q, 10, ivf_f.default_nprobe());
            hits += overlap(&ivf_q.topk(&q, 10, ivf_q.default_nprobe()), &exact);
        }
        let recall = hits as f64 / 200.0;
        assert!(recall >= 0.95, "quantized same-probe recall@10 {recall}");
    }

    #[test]
    fn with_pool_rejects_shape_mismatch() {
        let pool = clustered_pool(100, 8, 4, 5);
        let ivf = IvfFlatIndex::build(Arc::clone(&pool), IvfParams::for_items(100));
        let narrow = Arc::new(QuantizedMatrix::from_matrix(&clustered_pool(100, 4, 4, 5)));
        assert!(matches!(ivf.clone().with_pool(narrow), Err(AnnError::Mismatch(_))));
        let short = Arc::new(QuantizedMatrix::from_matrix(&clustered_pool(99, 8, 4, 5)));
        assert!(matches!(ivf.with_pool(short), Err(AnnError::Mismatch(_))));
    }

    #[test]
    fn decode_reattaches_a_quantized_pool() {
        let pool = clustered_pool(300, 8, 6, 41);
        let codes = Arc::new(QuantizedMatrix::from_matrix(&pool));
        let ivf = IvfFlatIndex::build(Arc::clone(&pool), IvfParams::for_items(300));
        let blob = ivf.encode();
        let back = IvfFlatIndex::decode(&blob, Arc::clone(&codes)).unwrap();
        assert!(back.pool().is_quantized());
        let q = query(8, 3);
        let direct = ivf.with_pool(codes).unwrap();
        assert_eq!(back.topk(&q, 15, 2), direct.topk(&q, 15, 2));
    }

    /// Mutates rows `changed` of `pool` deterministically and returns
    /// the updated matrix (the "new model's embeddings").
    fn mutate_rows(pool: &Matrix, changed: &[u32], seed: u64) -> Matrix {
        let mut rng = Rng64::seed_from_u64(seed);
        let mut updated = pool.clone();
        for &id in changed {
            for j in 0..updated.cols() {
                updated.set(id as usize, j, rng.normal() * 4.0);
            }
        }
        updated
    }

    #[test]
    fn reassign_matches_a_frozen_centroid_full_pass_bitwise() {
        let pool = clustered_pool(700, 12, 9, 51);
        let base = IvfFlatIndex::build(Arc::clone(&pool), IvfParams::for_items(pool.rows()));
        let changed: Vec<u32> = vec![3, 118, 119, 120, 301, 302, 650, 699];
        let updated = mutate_rows(&pool, &changed, 8);

        // Delta: re-assign only the changed set.
        let mut delta = base.clone();
        let changed_rows = updated.select_rows(&changed).unwrap();
        let moved = delta.reassign(&changed, &changed_rows);
        assert_eq!(delta.drift(), moved as u64);

        // Oracle: re-assign *every* id from the updated pool under the
        // same frozen centroids. Unchanged ids re-derive their existing
        // assignment, so skipping them must change nothing — the
        // incrementality contract.
        let mut oracle = base.clone();
        let all: Vec<u32> = (0..pool.rows() as u32).collect();
        let oracle_moved = oracle.reassign(&all, &updated);
        assert_eq!(moved, oracle_moved, "only changed rows can move");
        assert_eq!(delta.encode(), oracle.encode(), "identical structure, bit for bit");

        // Retrieval over the updated pool agrees wherever the index is
        // consulted (same lists, same centroids, same re-rank pool).
        let delta = delta.with_pool(Arc::new(updated.clone())).unwrap();
        let oracle = oracle.with_pool(Arc::new(updated)).unwrap();
        let q = query(12, 4);
        assert_eq!(delta.topk(&q, 20, 3), oracle.topk(&q, 20, 3));
        assert_eq!(delta.topk(&q, 20, delta.nlist()), oracle.topk(&q, 20, oracle.nlist()));
    }

    #[test]
    fn reassign_keeps_lists_ascending_and_covering() {
        let pool = clustered_pool(500, 8, 6, 77);
        let mut ivf = IvfFlatIndex::build(Arc::clone(&pool), IvfParams::for_items(pool.rows()));
        let changed: Vec<u32> = (0..500).step_by(7).collect();
        let updated = mutate_rows(&pool, &changed, 13);
        ivf.reassign(&changed, &updated.select_rows(&changed).unwrap());
        // decode re-validates the structural invariants (full coverage,
        // no duplicates, ascending lists) — a round-trip is the check.
        let back = IvfFlatIndex::decode(&ivf.encode(), Arc::clone(&pool)).unwrap();
        assert_eq!(back.encode(), ivf.encode());
    }

    #[test]
    fn reassign_of_unchanged_rows_moves_nothing() {
        let pool = clustered_pool(300, 8, 5, 19);
        let mut ivf = IvfFlatIndex::build(Arc::clone(&pool), IvfParams::for_items(pool.rows()));
        let before = ivf.encode();
        let ids: Vec<u32> = vec![0, 10, 299];
        let same_rows = pool.select_rows(&ids).unwrap();
        assert_eq!(ivf.reassign(&ids, &same_rows), 0);
        assert_eq!(ivf.drift(), 0);
        assert_eq!(ivf.encode(), before);
    }

    #[test]
    fn drift_accumulates_across_deltas_and_resets_on_build() {
        let pool = clustered_pool(400, 8, 8, 33);
        let mut ivf = IvfFlatIndex::build(Arc::clone(&pool), IvfParams::for_items(pool.rows()));
        let mut total = 0usize;
        let mut current = (*pool).clone();
        for round in 0..4u64 {
            let changed: Vec<u32> = (round as u32 * 40..(round as u32 + 1) * 40).collect();
            current = mutate_rows(&current, &changed, 100 + round);
            total += ivf.reassign(&changed, &current.select_rows(&changed).unwrap());
            assert_eq!(ivf.drift(), total as u64);
        }
        assert!(total > 0, "clustered mutations must move something");
        assert!(ivf.drift_fraction() > 0.0 && ivf.drift_fraction() <= 1.0);
        let rebuilt = IvfFlatIndex::build(Arc::new(current), *ivf.params());
        assert_eq!(rebuilt.drift(), 0, "training the quantizer clears drift");
    }

    #[test]
    fn cow_pools_score_identically_to_their_contiguous_twins() {
        use atnn_tensor::{CowMatrix, CowQuantMatrix};
        let pool = clustered_pool(900, 16, 12, 61);
        let ivf = IvfFlatIndex::build(Arc::clone(&pool), IvfParams::for_items(pool.rows()));
        let q = query(16, 42);

        let cow = Arc::new(CowMatrix::from_matrix(&pool));
        let via_cow = ivf.clone().with_pool(Arc::clone(&cow)).unwrap();
        assert_eq!(via_cow.topk(&q, 25, 4), ivf.topk(&q, 25, 4));
        assert_eq!(via_cow.topk(&q, 25, via_cow.nlist()), ivf.topk(&q, 25, ivf.nlist()));

        let codes = Arc::new(QuantizedMatrix::from_matrix(&pool));
        let cow_q = Arc::new(CowQuantMatrix::from_quantized(&codes));
        let via_int8 = ivf.clone().with_pool(Arc::clone(&codes)).unwrap();
        let via_cow_q = ivf.clone().with_pool(Arc::clone(&cow_q)).unwrap();
        assert!(via_cow_q.pool().is_quantized());
        assert_eq!(via_cow_q.topk(&q, 25, 4), via_int8.topk(&q, 25, 4));
        let oracle = BruteForce::new(cow_q);
        assert_eq!(via_cow_q.topk(&q, 25, via_cow_q.nlist()), oracle.topk(&q, 25, 0));
    }

    #[test]
    fn tiny_pools_build_and_answer() {
        let pool = Arc::new(Matrix::from_fn(1, 4, |_, j| j as f32));
        let ivf = IvfFlatIndex::build(Arc::clone(&pool), IvfParams::for_items(1));
        assert_eq!(ivf.nlist(), 1);
        let hits = ivf.topk(&[1.0, 0.0, 0.0, 0.0], 5, 0);
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].0, 0);
        assert!(topk_select(std::iter::empty(), 3).is_empty());
    }
}
