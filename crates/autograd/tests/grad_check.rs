//! Finite-difference validation of every differentiable op, plus
//! proptest-driven checks over random shapes and values.

use atnn_autograd::{check_gradients, Graph, ParamStore, Var};
use atnn_tensor::{Init, Matrix, Rng64};
use proptest::prelude::*;

/// Builds a store with `n` parameter matrices of the given shape.
fn setup(shapes: &[(usize, usize)], seed: u64) -> (ParamStore, Vec<atnn_autograd::ParamId>) {
    let mut rng = Rng64::seed_from_u64(seed);
    let mut store = ParamStore::new();
    let ids = shapes
        .iter()
        .enumerate()
        .map(|(i, &(r, c))| store.add(format!("p{i}"), Init::Normal(0.6).sample(r, c, &mut rng)))
        .collect();
    (store, ids)
}

/// Shorthand: check one two-parameter op composed with `sum` as the loss.
fn check_binary(shapes: [(usize, usize); 2], seed: u64, op: impl Fn(&mut Graph, Var, Var) -> Var) {
    let (mut store, ids) = setup(&shapes, seed);
    let (a, b) = (ids[0], ids[1]);
    check_gradients(&mut store, &[a, b], 2e-2, |g, s| {
        let av = g.param(s, a);
        let bv = g.param(s, b);
        let out = op(g, av, bv);
        // Weight the output elements asymmetrically so symmetric-op bugs
        // (swapped operands) can't cancel out.
        let w = Matrix::from_fn(g.value(out).rows(), g.value(out).cols(), |i, j| {
            0.5 + (i * 3 + j) as f32 * 0.25
        });
        let wv = g.input(w);
        let weighted = g.mul(out, wv);
        g.sum(weighted)
    })
    .unwrap();
}

fn check_unary(shape: (usize, usize), seed: u64, op: impl Fn(&mut Graph, Var) -> Var) {
    let (mut store, ids) = setup(&[shape], seed);
    let x = ids[0];
    check_gradients(&mut store, &[x], 2e-2, |g, s| {
        let xv = g.param(s, x);
        let out = op(g, xv);
        let w = Matrix::from_fn(g.value(out).rows(), g.value(out).cols(), |i, j| {
            0.5 + (i * 3 + j) as f32 * 0.25
        });
        let wv = g.input(w);
        let weighted = g.mul(out, wv);
        g.sum(weighted)
    })
    .unwrap();
}

#[test]
fn grad_matmul() {
    check_binary([(3, 4), (4, 2)], 1, |g, a, b| g.matmul(a, b));
}

#[test]
fn grad_add_sub_mul() {
    check_binary([(3, 3), (3, 3)], 2, |g, a, b| g.add(a, b));
    check_binary([(3, 3), (3, 3)], 3, |g, a, b| g.sub(a, b));
    check_binary([(3, 3), (3, 3)], 4, |g, a, b| g.mul(a, b));
}

#[test]
fn grad_add_row_broadcast() {
    check_binary([(4, 3), (1, 3)], 5, |g, a, b| g.add_row_broadcast(a, b));
}

#[test]
fn grad_scale_rows() {
    check_binary([(4, 3), (4, 1)], 6, |g, a, b| g.scale_rows(a, b));
}

#[test]
fn grad_mul_row_broadcast() {
    check_binary([(4, 3), (1, 3)], 24, |g, a, b| g.mul_row_broadcast(a, b));
}

#[test]
fn grad_rsqrt() {
    // Shift inputs positive so x + eps stays well away from 0.
    let (mut store, ids) = setup(&[(3, 4)], 25);
    let x = ids[0];
    store.value_mut(x).map_inplace(|v| v.abs() + 0.5);
    check_gradients(&mut store, &[x], 2e-2, |g, s| {
        let xv = g.param(s, x);
        let r = g.rsqrt(xv, 1e-3);
        g.sum(r)
    })
    .unwrap();
}

#[test]
fn grad_layer_norm_composition() {
    // Row-wise layer normalization assembled from primitives, checked end
    // to end: y = gamma ⊙ (x - mu) * rsqrt(var + eps) + beta.
    let (mut store, ids) = setup(&[(3, 4), (1, 4), (1, 4)], 26);
    let (x, gamma, beta) = (ids[0], ids[1], ids[2]);
    let d = 4.0f32;
    check_gradients(&mut store, &[x, gamma, beta], 3e-2, |g, s| {
        let xv = g.param(s, x);
        let ones_col = g.input(Matrix::full(4, 1, 1.0 / d));
        let mu = g.matmul(xv, ones_col); // [3,1] row means
        let ones_row = g.input(Matrix::full(3, 4, 1.0));
        let mu_b = g.scale_rows(ones_row, mu);
        let xc = g.sub(xv, mu_b);
        let sq = g.mul(xc, xc);
        let var = g.matmul(sq, ones_col);
        let inv = g.rsqrt(var, 1e-2);
        let normed = g.scale_rows(xc, inv);
        let gv = g.param(s, gamma);
        let bv = g.param(s, beta);
        let scaled = g.mul_row_broadcast(normed, gv);
        let out = g.add_row_broadcast(scaled, bv);
        let target = Matrix::from_fn(3, 4, |i, j| ((i + j) % 3) as f32 * 0.4 - 0.3);
        g.mse_loss(out, &target)
    })
    .unwrap();
}

#[test]
fn grad_rowwise_dot() {
    check_binary([(4, 3), (4, 3)], 7, |g, a, b| g.rowwise_dot(a, b));
}

#[test]
fn grad_rowwise_cosine() {
    check_binary([(4, 3), (4, 3)], 8, |g, a, b| g.rowwise_cosine(a, b));
}

#[test]
fn grad_concat_cols() {
    check_binary([(3, 2), (3, 4)], 9, |g, a, b| g.concat_cols(a, b));
}

#[test]
fn grad_sigmoid_tanh() {
    check_unary((3, 4), 10, |g, x| g.sigmoid(x));
    check_unary((3, 4), 11, |g, x| g.tanh(x));
}

#[test]
fn grad_relu_family() {
    // Shift values away from 0 where relu is non-differentiable.
    let (mut store, ids) = setup(&[(3, 4)], 12);
    let x = ids[0];
    store.value_mut(x).map_inplace(|v| if v.abs() < 0.2 { v + 0.5 } else { v });
    check_gradients(&mut store, &[x], 2e-2, |g, s| {
        let xv = g.param(s, x);
        let r = g.relu(xv);
        g.sum(r)
    })
    .unwrap();
    let (mut store, ids) = setup(&[(3, 4)], 13);
    let x = ids[0];
    store.value_mut(x).map_inplace(|v| if v.abs() < 0.2 { v + 0.5 } else { v });
    check_gradients(&mut store, &[x], 2e-2, |g, s| {
        let xv = g.param(s, x);
        let r = g.leaky_relu(xv, 0.1);
        g.sum(r)
    })
    .unwrap();
}

#[test]
fn grad_scalar_ops_and_mask() {
    check_unary((2, 3), 14, |g, x| g.mul_scalar(x, -1.7));
    check_unary((2, 3), 15, |g, x| g.add_scalar(x, 2.5));
    let mask = Matrix::from_fn(2, 3, |i, j| if (i + j) % 2 == 0 { 2.0 } else { 0.0 });
    check_unary((2, 3), 16, move |g, x| g.mul_mask(x, &mask));
}

#[test]
fn grad_mean_and_sum() {
    check_unary((3, 5), 17, |g, x| g.mean(x));
    check_unary((3, 5), 18, |g, x| g.sum(x));
}

#[test]
fn grad_mse_loss() {
    let target = Matrix::from_fn(4, 2, |i, j| (i as f32 - j as f32) * 0.3);
    let (mut store, ids) = setup(&[(4, 2)], 19);
    let p = ids[0];
    check_gradients(&mut store, &[p], 2e-2, |g, s| {
        let pv = g.param(s, p);
        g.mse_loss(pv, &target)
    })
    .unwrap();
}

#[test]
fn grad_bce_with_logits() {
    let targets = Matrix::from_fn(5, 1, |i, _| (i % 2) as f32);
    let (mut store, ids) = setup(&[(5, 1)], 20);
    let p = ids[0];
    check_gradients(&mut store, &[p], 2e-2, |g, s| {
        let pv = g.param(s, p);
        g.bce_with_logits_loss(pv, &targets)
    })
    .unwrap();
}

#[test]
fn grad_gather() {
    let (mut store, ids) = setup(&[(6, 3)], 21);
    let table = ids[0];
    let indices = vec![0u32, 2, 2, 5, 1];
    check_gradients(&mut store, &[table], 2e-2, |g, s| {
        let e = g.gather(s, table, &indices);
        let w = Matrix::from_fn(indices.len(), 3, |i, j| 0.3 + (i + 2 * j) as f32 * 0.2);
        let wv = g.input(w);
        let weighted = g.mul(e, wv);
        g.sum(weighted)
    })
    .unwrap();
}

#[test]
fn grad_deep_composition_mlp_like() {
    // A two-layer tanh MLP with a BCE head: composition of many ops.
    let (mut store, ids) = setup(&[(5, 4), (1, 4), (4, 1), (1, 1)], 22);
    let (w1, b1, w2, b2) = (ids[0], ids[1], ids[2], ids[3]);
    let x = Init::Normal(1.0).sample(6, 5, &mut Rng64::seed_from_u64(99));
    let y = Matrix::from_fn(6, 1, |i, _| (i % 2) as f32);
    check_gradients(&mut store, &[w1, b1, w2, b2], 3e-2, |g, s| {
        let xv = g.input(x.clone());
        let w1v = g.param(s, w1);
        let b1v = g.param(s, b1);
        let h = g.matmul(xv, w1v);
        let h = g.add_row_broadcast(h, b1v);
        let h = g.tanh(h);
        let w2v = g.param(s, w2);
        let b2v = g.param(s, b2);
        let z = g.matmul(h, w2v);
        let z = g.add_row_broadcast(z, b2v);
        g.bce_with_logits_loss(z, &y)
    })
    .unwrap();
}

#[test]
fn grad_cross_layer_composition() {
    // One DCN cross layer: x1 = x0 * (x0 w) + b + x0, checked end-to-end.
    let (mut store, ids) = setup(&[(4, 1), (1, 4)], 23);
    let (w, b) = (ids[0], ids[1]);
    let x0 = Init::Normal(0.8).sample(5, 4, &mut Rng64::seed_from_u64(7));
    let target = Init::Normal(0.8).sample(5, 4, &mut Rng64::seed_from_u64(8));
    check_gradients(&mut store, &[w, b], 2e-2, |g, s| {
        let x0v = g.input(x0.clone());
        let wv = g.param(s, w);
        let bv = g.param(s, b);
        let xw = g.matmul(x0v, wv);
        let crossed = g.scale_rows(x0v, xw);
        let with_bias = g.add_row_broadcast(crossed, bv);
        let x1 = g.add(with_bias, x0v);
        g.mse_loss(x1, &target)
    })
    .unwrap();
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn grad_matmul_random_shapes(m in 1usize..5, k in 1usize..5, n in 1usize..5, seed in 0u64..500) {
        let (mut store, ids) = setup(&[(m, k), (k, n)], seed);
        let (a, b) = (ids[0], ids[1]);
        check_gradients(&mut store, &[a, b], 3e-2, |g, s| {
            let av = g.param(s, a);
            let bv = g.param(s, b);
            let out = g.matmul(av, bv);
            g.mean(out)
        }).unwrap();
    }

    #[test]
    fn grad_tower_dot_score_random(seed in 0u64..500, batch in 1usize..6, dim in 1usize..6) {
        // The ATNN scoring head: sigmoid-CE over a row-wise dot of two
        // projected towers.
        let (mut store, ids) = setup(&[(3, dim), (4, dim)], seed);
        let (wi, wu) = (ids[0], ids[1]);
        let xi = Init::Normal(1.0).sample(batch, 3, &mut Rng64::seed_from_u64(seed ^ 1));
        let xu = Init::Normal(1.0).sample(batch, 4, &mut Rng64::seed_from_u64(seed ^ 2));
        let y = Matrix::from_fn(batch, 1, |i, _| (i % 2) as f32);
        check_gradients(&mut store, &[wi, wu], 3e-2, |g, s| {
            let xiv = g.input(xi.clone());
            let xuv = g.input(xu.clone());
            let wiv = g.param(s, wi);
            let wuv = g.param(s, wu);
            let vi = g.matmul(xiv, wiv);
            let vu = g.matmul(xuv, wuv);
            let logits = g.rowwise_dot(vi, vu);
            g.bce_with_logits_loss(logits, &y)
        }).unwrap();
    }

    #[test]
    fn grad_similarity_loss_random(seed in 0u64..500, batch in 1usize..5, dim in 2usize..6) {
        // The paper's adversarial similarity loss L_s = mean((1 - cos)^2).
        let (mut store, ids) = setup(&[(3, dim)], seed);
        let w = ids[0];
        let xp = Init::Normal(1.0).sample(batch, 3, &mut Rng64::seed_from_u64(seed ^ 3));
        let target_vec = Init::Normal(1.0).sample(batch, dim, &mut Rng64::seed_from_u64(seed ^ 4));
        check_gradients(&mut store, &[w], 3e-2, |g, s| {
            let xpv = g.input(xp.clone());
            let wv = g.param(s, w);
            let gen = g.matmul(xpv, wv);
            let tgt = g.input(target_vec.clone());
            let cos = g.rowwise_cosine(gen, tgt);
            let ones = g.input(Matrix::full(batch, 1, 1.0));
            let diff = g.sub(ones, cos);
            let sq = g.mul(diff, diff);
            g.mean(sq)
        }).unwrap();
    }
}
