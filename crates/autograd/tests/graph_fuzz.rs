//! Random-graph gradient fuzzer: builds arbitrary DAGs of differentiable
//! ops over a pool of parameters and checks every analytic gradient
//! against central finite differences. Catches interaction bugs (shared
//! subexpressions, repeated parents, mixed shapes) that per-op tests
//! cannot.

use atnn_autograd::{check_gradients, Graph, ParamStore, Var};
use atnn_tensor::{Init, Rng64};
use proptest::prelude::*;

/// One step of graph construction, drawn at random.
#[derive(Debug, Clone)]
enum Step {
    Add(usize, usize),
    Sub(usize, usize),
    Mul(usize, usize),
    Tanh(usize),
    Sigmoid(usize),
    LeakyRelu(usize),
    MulScalar(usize, i8),
    RowwiseDot(usize, usize),
    ScaleByDot(usize, usize, usize),
    // NOTE: `Detach` is deliberately absent: its whole point is to make the
    // analytic gradient differ from the true derivative (the forward value
    // still depends on the parent, so finite differences see the blocked
    // path). The first fuzzer run included it and correctly flagged the
    // discrepancy. Detach semantics are covered by a dedicated unit test.
}

fn step_strategy() -> impl Strategy<Value = Step> {
    prop_oneof![
        (any::<usize>(), any::<usize>()).prop_map(|(a, b)| Step::Add(a, b)),
        (any::<usize>(), any::<usize>()).prop_map(|(a, b)| Step::Sub(a, b)),
        (any::<usize>(), any::<usize>()).prop_map(|(a, b)| Step::Mul(a, b)),
        any::<usize>().prop_map(Step::Tanh),
        any::<usize>().prop_map(Step::Sigmoid),
        any::<usize>().prop_map(Step::LeakyRelu),
        (any::<usize>(), -3i8..4).prop_map(|(a, c)| Step::MulScalar(a, c)),
        (any::<usize>(), any::<usize>()).prop_map(|(a, b)| Step::RowwiseDot(a, b)),
        (any::<usize>(), any::<usize>(), any::<usize>())
            .prop_map(|(x, a, b)| Step::ScaleByDot(x, a, b)),
    ]
}

/// Executes the step plan deterministically: every produced node is
/// `[ROWS, COLS]`, so any index choice is valid modulo the pool length.
fn build(
    g: &mut Graph,
    store: &ParamStore,
    params: &[atnn_autograd::ParamId],
    steps: &[Step],
) -> Var {
    const ROWS: usize = 3;
    let mut pool: Vec<Var> = params.iter().map(|&p| g.param(store, p)).collect();
    for step in steps {
        let n = pool.len();
        let pick = |i: usize| pool[i % n];
        let v = match step {
            Step::Add(a, b) => {
                let (x, y) = (pick(*a), pick(*b));
                g.add(x, y)
            }
            Step::Sub(a, b) => {
                let (x, y) = (pick(*a), pick(*b));
                g.sub(x, y)
            }
            Step::Mul(a, b) => {
                let (x, y) = (pick(*a), pick(*b));
                g.mul(x, y)
            }
            Step::Tanh(a) => {
                let x = pick(*a);
                g.tanh(x)
            }
            Step::Sigmoid(a) => {
                let x = pick(*a);
                g.sigmoid(x)
            }
            Step::LeakyRelu(a) => {
                let x = pick(*a);
                g.leaky_relu(x, 0.2)
            }
            Step::MulScalar(a, c) => {
                let x = pick(*a);
                g.mul_scalar(x, *c as f32 * 0.4 + 0.1)
            }
            Step::RowwiseDot(a, b) => {
                // [ROWS,1] scaled back over a same-shaped one to stay
                // rectangular in the pool.
                let (x, y) = (pick(*a), pick(*b));
                let dots = g.rowwise_dot(x, y);
                g.scale_rows(x, dots)
            }
            Step::ScaleByDot(x, a, b) => {
                let (xv, av, bv) = (pick(*x), pick(*a), pick(*b));
                let dots = g.rowwise_dot(av, bv);
                g.scale_rows(xv, dots)
            }
        };
        pool.push(v);
        let _ = ROWS;
    }
    let last = *pool.last().expect("non-empty pool");
    // Reduce with tanh first so fuzz-built magnitudes can't overflow the
    // finite-difference window.
    let squashed = g.tanh(last);
    g.mean(squashed)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn random_graphs_have_correct_gradients(
        steps in proptest::collection::vec(step_strategy(), 1..12),
        seed in 0u64..10_000,
    ) {
        let mut rng = Rng64::seed_from_u64(seed);
        let mut store = ParamStore::new();
        let params: Vec<_> = (0..3)
            .map(|i| store.add(format!("p{i}"), Init::Normal(0.4).sample(3, 4, &mut rng)))
            .collect();
        let result = check_gradients(&mut store, &params, 4e-2, |g, s| {
            build(g, s, &params, &steps)
        });
        prop_assert!(result.is_ok(), "steps {steps:?}: {result:?}");
    }
}
