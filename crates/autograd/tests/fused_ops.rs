//! Fused-vs-unfused exactness: the fused `Graph::linear` node and the
//! probs-caching BCE loss must be **bit-identical** to the unfused op
//! chains they replace — forward values and accumulated gradients alike.

use atnn_autograd::{Graph, ParamId, ParamStore};
use atnn_tensor::{stable_sigmoid, ActKind, Init, Matrix, Rng64};

fn store_with(in_dim: usize, out_dim: usize, seed: u64) -> (ParamStore, ParamId, ParamId) {
    let mut rng = Rng64::seed_from_u64(seed);
    let mut store = ParamStore::new();
    let w = store.add("w", Init::XavierUniform.sample(in_dim, out_dim, &mut rng));
    let b = store.add("b", Init::Normal(0.3).sample(1, out_dim, &mut rng));
    (store, w, b)
}

fn batch(rows: usize, cols: usize, seed: u64) -> Matrix {
    let mut rng = Rng64::seed_from_u64(seed);
    Init::Normal(1.0).sample(rows, cols, &mut rng)
}

/// Applies the unfused chain param → matmul → add_row_broadcast → act.
fn unfused_layer(
    g: &mut Graph,
    store: &ParamStore,
    x: atnn_autograd::Var,
    w: ParamId,
    b: Option<ParamId>,
    act: ActKind,
) -> atnn_autograd::Var {
    let wv = g.param(store, w);
    let mut h = g.matmul(x, wv);
    if let Some(bid) = b {
        let bv = g.param(store, bid);
        h = g.add_row_broadcast(h, bv);
    }
    match act {
        ActKind::Identity => h,
        ActKind::Relu => g.relu(h),
        ActKind::LeakyRelu(alpha) => g.leaky_relu(h, alpha),
        ActKind::Tanh => g.tanh(h),
        ActKind::Sigmoid => g.sigmoid(h),
    }
}

#[test]
fn fused_linear_matches_unfused_bitwise_for_every_activation() {
    let acts = [
        ActKind::Identity,
        ActKind::Relu,
        ActKind::LeakyRelu(0.01),
        ActKind::Tanh,
        ActKind::Sigmoid,
    ];
    for (ai, &act) in acts.iter().enumerate() {
        for &with_bias in &[true, false] {
            let seed = 100 + ai as u64;
            let (mut fused_store, w, b) = store_with(13, 7, seed);
            let (mut plain_store, w2, b2) = store_with(13, 7, seed);
            let xs = batch(9, 13, seed + 50);
            let targets = batch(9, 7, seed + 60);

            let mut gf = Graph::new();
            let xv = gf.input(xs.clone());
            let y = gf.linear(&fused_store, xv, w, with_bias.then_some(b), act);
            let loss = gf.mse_loss(y, &targets);
            gf.backward(loss, &mut fused_store);

            let mut gp = Graph::new();
            let xv2 = gp.input(xs.clone());
            let y2 = unfused_layer(&mut gp, &plain_store, xv2, w2, with_bias.then_some(b2), act);
            let loss2 = gp.mse_loss(y2, &targets);
            gp.backward(loss2, &mut plain_store);

            let tag = format!("act={act:?} bias={with_bias}");
            assert_eq!(gf.value(y).as_slice(), gp.value(y2).as_slice(), "forward {tag}");
            assert_eq!(gf.value(loss).as_slice(), gp.value(loss2).as_slice(), "loss {tag}");
            assert_eq!(fused_store.grad(w).as_slice(), plain_store.grad(w2).as_slice(), "dw {tag}");
            if with_bias {
                assert_eq!(
                    fused_store.grad(b).as_slice(),
                    plain_store.grad(b2).as_slice(),
                    "dbias {tag}"
                );
            }
        }
    }
}

#[test]
fn fused_linear_routes_input_gradients() {
    // dx must flow through a fused layer exactly as through the unfused
    // chain: stack two layers so the first layer's dw depends on the
    // second layer's dx.
    let seed = 7;
    let (mut fused_store, w1, b1) = store_with(5, 8, seed);
    let (mut plain_store, w1p, b1p) = store_with(5, 8, seed);
    let w2 = {
        let mut rng = Rng64::seed_from_u64(seed + 1);
        fused_store.add("w2", Init::XavierUniform.sample(8, 3, &mut rng))
    };
    let w2p = {
        let mut rng = Rng64::seed_from_u64(seed + 1);
        plain_store.add("w2", Init::XavierUniform.sample(8, 3, &mut rng))
    };
    let xs = batch(6, 5, seed + 2);
    let targets = batch(6, 3, seed + 3);

    let mut gf = Graph::new();
    let xv = gf.input(xs.clone());
    let h = gf.linear(&fused_store, xv, w1, Some(b1), ActKind::Relu);
    let y = gf.linear(&fused_store, h, w2, None, ActKind::Identity);
    let loss = gf.mse_loss(y, &targets);
    gf.backward(loss, &mut fused_store);

    let mut gp = Graph::new();
    let xv2 = gp.input(xs);
    let h2 = unfused_layer(&mut gp, &plain_store, xv2, w1p, Some(b1p), ActKind::Relu);
    let y2 = unfused_layer(&mut gp, &plain_store, h2, w2p, None, ActKind::Identity);
    let loss2 = gp.mse_loss(y2, &targets);
    gp.backward(loss2, &mut plain_store);

    assert_eq!(fused_store.grad(w1).as_slice(), plain_store.grad(w1p).as_slice(), "dw1");
    assert_eq!(fused_store.grad(b1).as_slice(), plain_store.grad(b1p).as_slice(), "db1");
    assert_eq!(fused_store.grad(w2).as_slice(), plain_store.grad(w2p).as_slice(), "dw2");
}

#[test]
fn bce_cached_probs_gradient_matches_sigmoid_formula() {
    // The loss caches σ(z) in the forward sweep; its backward must equal
    // the reference (σ(z) - y) / N computed from stable_sigmoid directly.
    let mut store = ParamStore::new();
    let z0 = Matrix::from_rows(&[&[0.3f32, -1.2, 2.0, -40.0, 40.0, 0.0]]).unwrap();
    let p = store.add("z", z0.clone());
    let targets = Matrix::from_rows(&[&[1.0f32, 0.0, 1.0, 0.0, 1.0, 1.0]]).unwrap();

    let mut g = Graph::new();
    let z = g.param(&store, p);
    let loss = g.bce_with_logits_loss(z, &targets);
    g.backward(loss, &mut store);

    let n = z0.len() as f32;
    let scale = 1.0f32 / n; // backward precomputes the scale, then multiplies
    for (j, (&zv, &y)) in z0.as_slice().iter().zip(targets.as_slice()).enumerate() {
        let expect = scale * (stable_sigmoid(zv) - y);
        assert_eq!(store.grad(p).as_slice()[j], expect, "j={j} z={zv}");
    }

    // And the loss value itself keeps the standard stable form.
    let manual: f32 = z0
        .as_slice()
        .iter()
        .zip(targets.as_slice())
        .map(|(&z, &y)| z.max(0.0) - y * z + (1.0 + (-z.abs()).exp()).ln())
        .sum::<f32>()
        / n;
    assert!((g.value(loss).get(0, 0) - manual).abs() < 1e-6);
}
