//! Sparse-vs-dense gradient equality for the gather backward.
//!
//! Two stores hold bit-identical embedding tables; one declares the
//! table row-sparse via `mark_sparse`. Identical graphs run on both,
//! and every test asserts the accumulated gradients agree **bitwise**
//! (`f32::to_bits`), not approximately — the sparse path's contract is
//! that it changes storage, never arithmetic. Covered here: duplicate
//! ids (occurrence-order summation), full-vocab batches (dense
//! fallback in `coalesce_sparse_grads`), whole-table `Op::Param` use
//! (densify-on-accumulate), and gradient accumulation across multiple
//! backward passes without zeroing.

use atnn_autograd::{Graph, ParamId, ParamStore, Var};
use atnn_tensor::Matrix;
use proptest::prelude::*;

/// Bit-identical tables in two stores; the second is declared sparse.
fn paired_stores(vocab: usize, dim: usize) -> (ParamStore, ParamId, ParamStore, ParamId) {
    let table = Matrix::from_fn(vocab, dim, |i, j| ((i * 31 + j * 7) as f32 * 0.83).sin() * 0.5);
    let mut dense = ParamStore::new();
    let d = dense.add("emb", table.clone());
    let mut sparse = ParamStore::new();
    let s = sparse.add("emb", table);
    sparse.mark_sparse(s);
    (dense, d, sparse, s)
}

/// `sum(gather(ids) * W)` with a non-uniform weight block, so each
/// occurrence of a duplicated id contributes a *different* gradient row
/// (a plain `sum` would hide ordering bugs behind identical addends).
fn weighted_gather_loss(g: &mut Graph, store: &ParamStore, p: ParamId, ids: &[u32]) -> Var {
    let dim = store.value(p).cols();
    let e = g.gather(store, p, ids);
    let w = g.input(Matrix::from_fn(ids.len(), dim, |i, j| (i * 13 + j * 5) as f32 * 0.21 - 1.3));
    let prod = g.mul(e, w);
    g.sum(prod)
}

fn prop_bits_eq(a: &Matrix, b: &Matrix) -> Result<(), TestCaseError> {
    prop_assert_eq!(a.shape(), b.shape());
    for (i, (x, y)) in a.as_slice().iter().zip(b.as_slice()).enumerate() {
        prop_assert_eq!(x.to_bits(), y.to_bits(), "scalar {} differs: {} vs {}", i, x, y);
    }
    Ok(())
}

/// vocab, dim, and an id list (duplicates very likely at these sizes).
fn case() -> impl Strategy<Value = (usize, usize, Vec<u32>)> {
    (2usize..12, 1usize..6).prop_flat_map(|(vocab, dim)| {
        collection::vec(0..vocab as u32, 1..24).prop_map(move |ids| (vocab, dim, ids))
    })
}

proptest! {
    #[test]
    fn gather_backward_is_bit_identical((vocab, dim, ids) in case()) {
        let (mut dense, d, mut sparse, s) = paired_stores(vocab, dim);
        let mut g = Graph::new();
        let loss = weighted_gather_loss(&mut g, &dense, d, &ids);
        g.backward(loss, &mut dense);
        let mut g = Graph::new();
        let loss = weighted_gather_loss(&mut g, &sparse, s, &ids);
        g.backward(loss, &mut sparse);

        prop_bits_eq(&dense.grad_to_dense(d), &sparse.grad_to_dense(s))?;
        prop_assert_eq!(
            dense.grad_norm(&[d]).to_bits(),
            sparse.grad_norm(&[s]).to_bits(),
            "grad_norm must agree bitwise across representations"
        );

        // Representation check: a batch that missed at least one row
        // stays sparse; full occupancy must have fallen back to dense.
        let mut unique = ids.clone();
        unique.sort_unstable();
        unique.dedup();
        prop_assert_eq!(sparse.grad_entry(s).is_sparse(), unique.len() < vocab);
    }

    #[test]
    fn full_vocab_batch_falls_back_to_dense((vocab, dim, extra) in case()) {
        let (mut dense, d, mut sparse, s) = paired_stores(vocab, dim);
        // Every row at least once, plus arbitrary duplicates.
        let mut ids: Vec<u32> = (0..vocab as u32).collect();
        ids.extend_from_slice(&extra);

        let mut g = Graph::new();
        let loss = weighted_gather_loss(&mut g, &dense, d, &ids);
        g.backward(loss, &mut dense);
        let mut g = Graph::new();
        let loss = weighted_gather_loss(&mut g, &sparse, s, &ids);
        g.backward(loss, &mut sparse);

        prop_assert!(!sparse.grad_entry(s).is_sparse(), "full touch must densify");
        prop_bits_eq(&dense.grad_to_dense(d), &sparse.grad_to_dense(s))?;
    }

    #[test]
    fn whole_table_param_use_densifies_and_matches((vocab, dim, ids) in case()) {
        // loss = sum(gather(ids) * W) + 0.5 * sum(table): the second term
        // reaches the table through `Op::Param`, whose full-size backward
        // forces the sparse slot dense mid-pass (the L2-penalty shape).
        let (mut dense, d, mut sparse, s) = paired_stores(vocab, dim);
        for (store, p) in [(&mut dense, d), (&mut sparse, s)] {
            let mut g = Graph::new();
            let gathered = weighted_gather_loss(&mut g, store, p, &ids);
            let table = g.param(store, p);
            let table_sum = g.sum(table);
            let penalty = g.mul_scalar(table_sum, 0.5);
            let loss = g.add(gathered, penalty);
            g.backward(loss, store);
        }
        prop_assert!(!sparse.grad_entry(s).is_sparse(), "Op::Param backward must densify");
        prop_bits_eq(&dense.grad_to_dense(d), &sparse.grad_to_dense(s))?;
    }

    #[test]
    fn accumulation_across_backward_passes_matches(
        (vocab, dim, ids_a) in case(),
        seed in 0u32..1000,
    ) {
        // Two backward passes without zeroing in between: the second
        // scatters onto an already-coalesced sparse gradient. Afterwards
        // `zero_grads` must restore the sparse representation and a third
        // pass must still agree.
        let ids_b: Vec<u32> = ids_a.iter().map(|&i| (i + seed) % vocab as u32).collect();
        let (mut dense, d, mut sparse, s) = paired_stores(vocab, dim);
        for ids in [&ids_a, &ids_b] {
            let mut g = Graph::new();
            let loss = weighted_gather_loss(&mut g, &dense, d, ids);
            g.backward(loss, &mut dense);
            let mut g = Graph::new();
            let loss = weighted_gather_loss(&mut g, &sparse, s, ids);
            g.backward(loss, &mut sparse);
        }
        prop_bits_eq(&dense.grad_to_dense(d), &sparse.grad_to_dense(s))?;

        dense.zero_grads(&[d]);
        sparse.zero_grads(&[s]);
        prop_assert!(sparse.grad_entry(s).is_sparse(), "zeroing restores sparse form");
        let mut g = Graph::new();
        let loss = weighted_gather_loss(&mut g, &dense, d, &ids_b);
        g.backward(loss, &mut dense);
        let mut g = Graph::new();
        let loss = weighted_gather_loss(&mut g, &sparse, s, &ids_b);
        g.backward(loss, &mut sparse);
        prop_bits_eq(&dense.grad_to_dense(d), &sparse.grad_to_dense(s))?;
    }

    #[test]
    fn reused_graph_matches_fresh_graphs((vocab, dim, ids) in case()) {
        // The training loop reuses one `Graph` (workspace arena and all)
        // across steps via `clear()`; recycled scratch buffers must not
        // leak into results.
        let (mut fresh, d, mut reused, s) = paired_stores(vocab, dim);
        let mut g = Graph::new();
        for _ in 0..3 {
            fresh.zero_grads(&[d]);
            let mut gf = Graph::new();
            let loss = weighted_gather_loss(&mut gf, &fresh, d, &ids);
            gf.backward(loss, &mut fresh);

            reused.zero_grads(&[s]);
            g.clear();
            let loss = weighted_gather_loss(&mut g, &reused, s, &ids);
            g.backward(loss, &mut reused);

            prop_bits_eq(&fresh.grad_to_dense(d), &reused.grad_to_dense(s))?;
        }
    }
}
