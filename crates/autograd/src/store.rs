//! Parameter storage: named slots of (value, gradient) matrices.

use atnn_tensor::Matrix;

/// Opaque handle to one parameter slot in a [`ParamStore`].
///
/// Handles are plain indices; they are only meaningful for the store that
/// issued them. Layers hold `ParamId`s rather than matrices so that
/// *parameter sharing* (the paper's shared-embedding strategy) is literal:
/// two layers holding the same `ParamId` read and update the same weights.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ParamId(pub(crate) usize);

impl ParamId {
    /// The raw slot index (stable for the lifetime of the store).
    pub fn index(self) -> usize {
        self.0
    }
}

#[derive(Debug, Clone)]
struct Slot {
    name: String,
    value: Matrix,
    grad: Matrix,
}

/// Container for all trainable parameters of one or more models.
///
/// The alternating optimization of the paper's Algorithm 1 (a
/// discriminator-side step and a generator-side step, each touching a
/// different subset of parameters) is expressed by optimizers operating on
/// explicit `&[ParamId]` *parameter groups* over a shared store.
#[derive(Debug, Clone, Default)]
pub struct ParamStore {
    slots: Vec<Slot>,
}

impl ParamStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a parameter, returning its handle. Gradient starts at zero.
    pub fn add(&mut self, name: impl Into<String>, value: Matrix) -> ParamId {
        let grad = Matrix::zeros(value.rows(), value.cols());
        self.slots.push(Slot { name: name.into(), value, grad });
        ParamId(self.slots.len() - 1)
    }

    /// Number of registered parameters.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// True when no parameters are registered.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Total number of scalar weights across all slots.
    pub fn num_scalars(&self) -> usize {
        self.slots.iter().map(|s| s.value.len()).sum()
    }

    /// The parameter's registered name.
    pub fn name(&self, id: ParamId) -> &str {
        &self.slots[id.0].name
    }

    /// Immutable view of a parameter's value.
    pub fn value(&self, id: ParamId) -> &Matrix {
        &self.slots[id.0].value
    }

    /// Mutable view of a parameter's value (used by optimizers and loaders).
    pub fn value_mut(&mut self, id: ParamId) -> &mut Matrix {
        &mut self.slots[id.0].value
    }

    /// Immutable view of a parameter's accumulated gradient.
    pub fn grad(&self, id: ParamId) -> &Matrix {
        &self.slots[id.0].grad
    }

    /// Mutable view of a parameter's gradient (used by `Graph::backward`).
    pub fn grad_mut(&mut self, id: ParamId) -> &mut Matrix {
        &mut self.slots[id.0].grad
    }

    /// Zeroes the gradients of the given parameter group.
    pub fn zero_grads(&mut self, ids: &[ParamId]) {
        for &id in ids {
            self.slots[id.0].grad.fill_zero();
        }
    }

    /// Zeroes every gradient in the store.
    pub fn zero_all_grads(&mut self) {
        for slot in &mut self.slots {
            slot.grad.fill_zero();
        }
    }

    /// All handles, in registration order.
    pub fn all_ids(&self) -> Vec<ParamId> {
        (0..self.slots.len()).map(ParamId).collect()
    }

    /// Global L2 norm of the gradients of a parameter group (for clipping).
    pub fn grad_norm(&self, ids: &[ParamId]) -> f32 {
        ids.iter()
            .map(|&id| {
                let g = &self.slots[id.0].grad;
                g.as_slice().iter().map(|&v| v * v).sum::<f32>()
            })
            .sum::<f32>()
            .sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use atnn_tensor::Matrix;

    #[test]
    fn add_and_lookup() {
        let mut store = ParamStore::new();
        let a = store.add("w1", Matrix::full(2, 3, 1.0));
        let b = store.add("b1", Matrix::zeros(1, 3));
        assert_eq!(store.len(), 2);
        assert_eq!(store.num_scalars(), 9);
        assert_eq!(store.name(a), "w1");
        assert_eq!(store.value(b).shape(), (1, 3));
        assert_eq!(store.grad(a).shape(), (2, 3));
        assert_eq!(store.all_ids(), vec![a, b]);
    }

    #[test]
    fn zero_grads_is_group_scoped() {
        let mut store = ParamStore::new();
        let a = store.add("a", Matrix::zeros(1, 1));
        let b = store.add("b", Matrix::zeros(1, 1));
        store.grad_mut(a).set(0, 0, 5.0);
        store.grad_mut(b).set(0, 0, 7.0);
        store.zero_grads(&[a]);
        assert_eq!(store.grad(a).get(0, 0), 0.0);
        assert_eq!(store.grad(b).get(0, 0), 7.0);
        store.zero_all_grads();
        assert_eq!(store.grad(b).get(0, 0), 0.0);
    }

    #[test]
    fn grad_norm_is_global_l2() {
        let mut store = ParamStore::new();
        let a = store.add("a", Matrix::zeros(1, 2));
        let b = store.add("b", Matrix::zeros(1, 1));
        store.grad_mut(a).as_mut_slice().copy_from_slice(&[3.0, 0.0]);
        store.grad_mut(b).set(0, 0, 4.0);
        assert!((store.grad_norm(&[a, b]) - 5.0).abs() < 1e-6);
        assert!((store.grad_norm(&[a]) - 3.0).abs() < 1e-6);
    }
}
