//! Parameter storage: named slots of (value, gradient) matrices.
//!
//! Gradients come in two representations (see [`Grad`]): dense matrices
//! (the default — every op except `gather` produces full-size
//! gradients) and row-sparse lists for embedding tables declared with
//! [`ParamStore::mark_sparse`], where a minibatch only touches a few
//! rows of a `vocab x dim` value. Sparse slots keep optimizer and
//! zeroing cost at O(touched rows · dim) instead of O(vocab · dim).

use atnn_tensor::{Matrix, SparseRowGrad};

use crate::codec::RowCodec;

/// Opaque handle to one parameter slot in a [`ParamStore`].
///
/// Handles are plain indices; they are only meaningful for the store that
/// issued them. Layers hold `ParamId`s rather than matrices so that
/// *parameter sharing* (the paper's shared-embedding strategy) is literal:
/// two layers holding the same `ParamId` read and update the same weights.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ParamId(pub(crate) usize);

impl ParamId {
    /// The raw slot index (stable for the lifetime of the store).
    pub fn index(self) -> usize {
        self.0
    }
}

/// A parameter's accumulated gradient: dense matrix or row-sparse list.
///
/// Slots declared with [`ParamStore::mark_sparse`] normally hold
/// `Sparse`, but fall back to `Dense` within a step when something
/// produces a full-size gradient for them (an `Op::Param` use of the
/// whole table, or a batch touching every row) — optimizers must
/// therefore match on the representation, not on the declaration.
#[derive(Debug, Clone)]
pub enum Grad {
    /// Full-size gradient, same shape as the value.
    Dense(Matrix),
    /// Row-sparse gradient; coalesced by the end of every backward pass.
    Sparse(SparseRowGrad),
}

impl Grad {
    /// True for the sparse representation.
    pub fn is_sparse(&self) -> bool {
        matches!(self, Grad::Sparse(_))
    }
}

/// A slot's backing value: a dense matrix, or a compressed [`RowCodec`]
/// reachable only through the gather/scatter boundary (see the
/// [`crate::codec`] module docs for the contract).
#[derive(Debug, Clone)]
enum Value {
    Dense(Matrix),
    Codec(Box<dyn RowCodec>),
}

impl Value {
    fn rows(&self) -> usize {
        match self {
            Value::Dense(m) => m.rows(),
            Value::Codec(c) => c.rows(),
        }
    }

    fn cols(&self) -> usize {
        match self {
            Value::Dense(m) => m.cols(),
            Value::Codec(c) => c.dim(),
        }
    }

    fn num_scalars(&self) -> usize {
        match self {
            Value::Dense(m) => m.len(),
            Value::Codec(c) => c.param_count(),
        }
    }
}

#[derive(Debug, Clone)]
struct Slot {
    name: String,
    value: Value,
    grad: Grad,
    /// Declared sparse via `mark_sparse`: zeroing restores the sparse
    /// representation even after a dense fallback.
    declared_sparse: bool,
}

impl Slot {
    /// Converts a sparse gradient to the equivalent dense matrix in place.
    fn densify(&mut self) {
        if let Grad::Sparse(sg) = &self.grad {
            self.grad = Grad::Dense(sg.to_dense(self.value.rows()));
        }
    }

    fn dense(&self) -> &Matrix {
        match &self.value {
            Value::Dense(m) => m,
            Value::Codec(_) => panic!(
                "'{}' is codec-compressed; it has no dense value — use gather_rows/scatter_rows",
                self.name
            ),
        }
    }

    fn dense_mut(&mut self) -> &mut Matrix {
        match &mut self.value {
            Value::Dense(m) => m,
            Value::Codec(_) => panic!(
                "'{}' is codec-compressed; it has no dense value — use gather_rows/scatter_rows",
                self.name
            ),
        }
    }
}

/// Container for all trainable parameters of one or more models.
///
/// The alternating optimization of the paper's Algorithm 1 (a
/// discriminator-side step and a generator-side step, each touching a
/// different subset of parameters) is expressed by optimizers operating on
/// explicit `&[ParamId]` *parameter groups* over a shared store.
#[derive(Debug, Clone, Default)]
pub struct ParamStore {
    slots: Vec<Slot>,
}

impl ParamStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a parameter, returning its handle. Gradient starts at zero.
    pub fn add(&mut self, name: impl Into<String>, value: Matrix) -> ParamId {
        let grad = Grad::Dense(Matrix::zeros(value.rows(), value.cols()));
        self.slots.push(Slot {
            name: name.into(),
            value: Value::Dense(value),
            grad,
            declared_sparse: false,
        });
        ParamId(self.slots.len() - 1)
    }

    /// Registers a codec-compressed parameter (see [`RowCodec`]).
    ///
    /// The slot is reachable only through [`ParamStore::gather_rows`] /
    /// [`ParamStore::scatter_rows`]; gradient state lives inside the
    /// codec, so the slot's [`Grad`] entry is permanently an empty
    /// placeholder and the whole-table accessors ([`ParamStore::value`],
    /// [`ParamStore::grad`], …) panic with a descriptive message.
    pub fn add_codec(&mut self, name: impl Into<String>, codec: Box<dyn RowCodec>) -> ParamId {
        let grad = Grad::Sparse(SparseRowGrad::new(codec.dim()));
        self.slots.push(Slot {
            name: name.into(),
            value: Value::Codec(codec),
            grad,
            declared_sparse: false,
        });
        ParamId(self.slots.len() - 1)
    }

    /// True when the parameter is backed by a [`RowCodec`].
    pub fn is_codec_param(&self, id: ParamId) -> bool {
        matches!(self.slots[id.0].value, Value::Codec(_))
    }

    /// The codec backing a parameter registered with
    /// [`ParamStore::add_codec`].
    ///
    /// # Panics
    /// Panics when the slot is a plain dense parameter.
    pub fn codec(&self, id: ParamId) -> &dyn RowCodec {
        match &self.slots[id.0].value {
            Value::Codec(c) => c.as_ref(),
            Value::Dense(_) => panic!("'{}' is not codec-compressed", self.slots[id.0].name),
        }
    }

    /// Mutable access to a parameter's codec (optimizer steps).
    ///
    /// # Panics
    /// Panics when the slot is a plain dense parameter.
    pub fn codec_mut(&mut self, id: ParamId) -> &mut dyn RowCodec {
        let slot = &mut self.slots[id.0];
        match &mut slot.value {
            Value::Codec(c) => c.as_mut(),
            Value::Dense(_) => panic!("'{}' is not codec-compressed", slot.name),
        }
    }

    /// Declares a parameter's gradient row-sparse (embedding tables whose
    /// batches touch few rows). Any currently accumulated gradient is
    /// discarded; call this at model construction time. Idempotent, so
    /// shared tables may be marked through every sharing handle.
    ///
    /// # Panics
    /// Panics on a zero-width value (no gradient rows to store) or on a
    /// codec-compressed slot (its gradients already live inside the
    /// codec; there is nothing to declare).
    pub fn mark_sparse(&mut self, id: ParamId) {
        let slot = &mut self.slots[id.0];
        assert!(
            !matches!(slot.value, Value::Codec(_)),
            "'{}' is codec-compressed; mark_sparse does not apply",
            slot.name
        );
        slot.declared_sparse = true;
        slot.grad = Grad::Sparse(SparseRowGrad::new(slot.value.cols()));
    }

    /// True when the parameter was declared sparse via
    /// [`ParamStore::mark_sparse`] (its gradient may still be a dense
    /// fallback at any given moment — see [`Grad`]).
    pub fn is_sparse_param(&self, id: ParamId) -> bool {
        self.slots[id.0].declared_sparse
    }

    /// Number of registered parameters.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// True when no parameters are registered.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Total number of scalar weights across all slots (codec slots
    /// count the scalars the codec actually stores, not the virtual
    /// `rows x dim` table).
    pub fn num_scalars(&self) -> usize {
        self.slots.iter().map(|s| s.value.num_scalars()).sum()
    }

    /// The parameter's registered name.
    pub fn name(&self, id: ParamId) -> &str {
        &self.slots[id.0].name
    }

    /// Immutable view of a parameter's value.
    ///
    /// # Panics
    /// Panics on a codec-compressed slot (no dense table exists); use
    /// [`ParamStore::gather_rows`] to materialize the rows you need.
    pub fn value(&self, id: ParamId) -> &Matrix {
        self.slots[id.0].dense()
    }

    /// Mutable view of a parameter's value (used by optimizers and loaders).
    ///
    /// # Panics
    /// Panics on a codec-compressed slot (see [`ParamStore::value`]).
    pub fn value_mut(&mut self, id: ParamId) -> &mut Matrix {
        self.slots[id.0].dense_mut()
    }

    /// A parameter's logical shape `(rows, cols)` — defined for dense
    /// and codec slots alike.
    pub fn shape(&self, id: ParamId) -> (usize, usize) {
        let v = &self.slots[id.0].value;
        (v.rows(), v.cols())
    }

    /// Materializes rows `indices` of the parameter as a fresh
    /// `indices.len() x dim` matrix — the embedding-lookup forward, and
    /// the only whole-row read path codec slots support.
    ///
    /// # Panics
    /// Panics when an index is out of range for the table.
    pub fn gather_rows(&self, id: ParamId, indices: &[u32]) -> Matrix {
        let slot = &self.slots[id.0];
        match &slot.value {
            Value::Dense(m) => m
                .select_rows(indices)
                .unwrap_or_else(|e| panic!("gather from '{}': {e}", slot.name)),
            Value::Codec(c) => {
                let mut out = Matrix::zeros(indices.len(), c.dim());
                c.gather_into(indices, &mut out);
                out
            }
        }
    }

    /// Immutable view of a parameter's accumulated *dense* gradient.
    ///
    /// # Panics
    /// Panics when the gradient is currently sparse — representation-
    /// aware callers use [`ParamStore::grad_entry`] or
    /// [`ParamStore::grad_to_dense`].
    pub fn grad(&self, id: ParamId) -> &Matrix {
        if matches!(self.slots[id.0].value, Value::Codec(_)) {
            panic!("gradient of '{}' lives inside its codec", self.slots[id.0].name);
        }
        match &self.slots[id.0].grad {
            Grad::Dense(m) => m,
            Grad::Sparse(_) => panic!(
                "gradient of '{}' is sparse; use grad_entry/grad_to_dense",
                self.slots[id.0].name
            ),
        }
    }

    /// Mutable view of a parameter's *dense* gradient.
    ///
    /// # Panics
    /// Panics when the gradient is currently sparse (see [`ParamStore::grad`]).
    pub fn grad_mut(&mut self, id: ParamId) -> &mut Matrix {
        let slot = &mut self.slots[id.0];
        if matches!(slot.value, Value::Codec(_)) {
            panic!("gradient of '{}' lives inside its codec", slot.name);
        }
        match &mut slot.grad {
            Grad::Dense(m) => m,
            Grad::Sparse(_) => {
                panic!("gradient of '{}' is sparse; use grad_entry_mut/scatter_rows", slot.name)
            }
        }
    }

    /// The gradient in whichever representation it currently has.
    pub fn grad_entry(&self, id: ParamId) -> &Grad {
        &self.slots[id.0].grad
    }

    /// Mutable access to the gradient representation.
    pub fn grad_entry_mut(&mut self, id: ParamId) -> &mut Grad {
        &mut self.slots[id.0].grad
    }

    /// Split borrow of a parameter's value and gradient — the optimizer
    /// step entry point (read the gradient while updating the value).
    ///
    /// # Panics
    /// Panics on a codec-compressed slot; codec-aware optimizers step
    /// those through [`ParamStore::codec_mut`].
    pub fn value_and_grad_mut(&mut self, id: ParamId) -> (&mut Matrix, &mut Grad) {
        let slot = &mut self.slots[id.0];
        match &mut slot.value {
            Value::Dense(m) => (m, &mut slot.grad),
            Value::Codec(_) => panic!(
                "'{}' is codec-compressed; step it through codec_mut().sgd_step()",
                slot.name
            ),
        }
    }

    /// The gradient materialized as a dense matrix (copies; diagnostics
    /// and gradient checking, not the hot path). For codec slots this is
    /// undefined (their gradients live in factor space) and panics.
    pub fn grad_to_dense(&self, id: ParamId) -> Matrix {
        let slot = &self.slots[id.0];
        if matches!(slot.value, Value::Codec(_)) {
            panic!("gradient of '{}' lives inside its codec", slot.name);
        }
        match &slot.grad {
            Grad::Dense(m) => m.clone(),
            Grad::Sparse(sg) => sg.to_dense(slot.value.rows()),
        }
    }

    /// Accumulates `g.row(k)` into gradient row `indices[k]` for every
    /// `k` — the gather/embedding-bag backward. Sparse slots record the
    /// touched rows; dense slots scatter-add in place. Duplicate indices
    /// sum in occurrence order either way (bit-identical results).
    ///
    /// # Panics
    /// Panics on width mismatch or (dense path) out-of-range indices.
    pub fn scatter_rows(&mut self, id: ParamId, indices: &[u32], g: &Matrix) {
        let slot = &mut self.slots[id.0];
        if let Value::Codec(c) = &mut slot.value {
            c.scatter_grads(indices, g);
            return;
        }
        match &mut slot.grad {
            Grad::Sparse(sg) => sg.push_rows(indices, g),
            Grad::Dense(table) => {
                for (r, &idx) in indices.iter().enumerate() {
                    let row = table.row_mut(idx as usize);
                    for (t, &d) in row.iter_mut().zip(g.row(r)) {
                        *t += d;
                    }
                }
            }
        }
    }

    /// Accumulates a full-size gradient (`Op::Param` backward). A sparse
    /// slot falls back to dense first — using a whole embedding table as
    /// a dense leaf (e.g. an L2 penalty over it) densifies its gradient
    /// for that step.
    pub fn accumulate_dense(&mut self, id: ParamId, g: &Matrix) {
        if matches!(self.slots[id.0].value, Value::Codec(_)) {
            panic!(
                "'{}' is codec-compressed; whole-table gradients are not representable",
                self.slots[id.0].name
            );
        }
        self.slots[id.0].densify();
        match &mut self.slots[id.0].grad {
            Grad::Dense(m) => m.add_assign_scaled(g, 1.0).expect("param grad shape"),
            Grad::Sparse(_) => unreachable!("densified above"),
        }
    }

    /// Converts a sparse gradient to its dense equivalent in place
    /// (no-op on dense slots). Optimizer fallbacks (momentum, coupled
    /// weight decay) use this when they need the full matrix.
    pub fn densify_grad(&mut self, id: ParamId) {
        self.slots[id.0].densify();
    }

    /// Coalesces every sparse gradient (sorts, merges duplicate rows);
    /// called at the end of every backward pass so consumers can assume
    /// sorted, duplicate-free entries. A batch that touched every row is
    /// densified — the dense sweep is cheaper than sparse bookkeeping at
    /// full occupancy.
    pub fn coalesce_sparse_grads(&mut self) {
        for slot in &mut self.slots {
            if matches!(slot.value, Value::Codec(_)) {
                continue; // codec gradients coalesce internally
            }
            if let Grad::Sparse(sg) = &mut slot.grad {
                sg.coalesce();
                if sg.nnz() >= slot.value.rows() {
                    slot.densify();
                }
            }
        }
    }

    /// Zeroes the gradients of the given parameter group. Sparse-declared
    /// slots return to an empty sparse gradient (retaining buffers; also
    /// undoing any dense fallback from the previous step).
    pub fn zero_grads(&mut self, ids: &[ParamId]) {
        for &id in ids {
            self.zero_slot(id.0);
        }
    }

    /// Zeroes every gradient in the store.
    pub fn zero_all_grads(&mut self) {
        for i in 0..self.slots.len() {
            self.zero_slot(i);
        }
    }

    fn zero_slot(&mut self, i: usize) {
        let slot = &mut self.slots[i];
        if let Value::Codec(c) = &mut slot.value {
            c.zero_grads();
            return;
        }
        if slot.declared_sparse {
            match &mut slot.grad {
                Grad::Sparse(sg) => sg.clear(),
                Grad::Dense(_) => {
                    slot.grad = Grad::Sparse(SparseRowGrad::new(slot.value.cols()));
                }
            }
        } else if let Grad::Dense(m) = &mut slot.grad {
            m.fill_zero();
        }
    }

    /// Rescales a parameter's gradient by `alpha` in either
    /// representation (gradient clipping). Codec slots rescale their
    /// internal (factor-space) gradient state.
    pub fn scale_grad(&mut self, id: ParamId, alpha: f32) {
        let slot = &mut self.slots[id.0];
        if let Value::Codec(c) = &mut slot.value {
            c.scale_grads(alpha);
            return;
        }
        match &mut slot.grad {
            Grad::Dense(m) => m.scale_assign(alpha),
            Grad::Sparse(sg) => sg.scale(alpha),
        }
    }

    /// All handles, in registration order.
    pub fn all_ids(&self) -> Vec<ParamId> {
        (0..self.slots.len()).map(ParamId).collect()
    }

    /// Global L2 norm of the gradients of a parameter group (for clipping).
    ///
    /// Sparse slots contribute their coalesced entries in ascending-row
    /// order — the same traversal order as the dense row-major sweep over
    /// the nonzero rows, with the all-zero rows contributing exact-zero
    /// terms — so the result is bit-identical across representations.
    /// Codec slots contribute the L2 of their internal (factor-space)
    /// gradient state, so clipping a mixed group clips each slot in its
    /// own parameter space.
    pub fn grad_norm(&self, ids: &[ParamId]) -> f32 {
        ids.iter()
            .map(|&id| {
                let slot = &self.slots[id.0];
                if let Value::Codec(c) = &slot.value {
                    return c.grad_l2_sq();
                }
                match &slot.grad {
                    Grad::Dense(g) => g.as_slice().iter().map(|&v| v * v).sum::<f32>(),
                    Grad::Sparse(sg) => sg.l2_sq(),
                }
            })
            .sum::<f32>()
            .sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use atnn_tensor::Matrix;

    #[test]
    fn add_and_lookup() {
        let mut store = ParamStore::new();
        let a = store.add("w1", Matrix::full(2, 3, 1.0));
        let b = store.add("b1", Matrix::zeros(1, 3));
        assert_eq!(store.len(), 2);
        assert_eq!(store.num_scalars(), 9);
        assert_eq!(store.name(a), "w1");
        assert_eq!(store.value(b).shape(), (1, 3));
        assert_eq!(store.grad(a).shape(), (2, 3));
        assert_eq!(store.all_ids(), vec![a, b]);
    }

    #[test]
    fn zero_grads_is_group_scoped() {
        let mut store = ParamStore::new();
        let a = store.add("a", Matrix::zeros(1, 1));
        let b = store.add("b", Matrix::zeros(1, 1));
        store.grad_mut(a).set(0, 0, 5.0);
        store.grad_mut(b).set(0, 0, 7.0);
        store.zero_grads(&[a]);
        assert_eq!(store.grad(a).get(0, 0), 0.0);
        assert_eq!(store.grad(b).get(0, 0), 7.0);
        store.zero_all_grads();
        assert_eq!(store.grad(b).get(0, 0), 0.0);
    }

    #[test]
    fn grad_norm_is_global_l2() {
        let mut store = ParamStore::new();
        let a = store.add("a", Matrix::zeros(1, 2));
        let b = store.add("b", Matrix::zeros(1, 1));
        store.grad_mut(a).as_mut_slice().copy_from_slice(&[3.0, 0.0]);
        store.grad_mut(b).set(0, 0, 4.0);
        assert!((store.grad_norm(&[a, b]) - 5.0).abs() < 1e-6);
        assert!((store.grad_norm(&[a]) - 3.0).abs() < 1e-6);
    }

    #[test]
    fn sparse_slot_collects_scattered_rows() {
        let mut store = ParamStore::new();
        let t = store.add("emb", Matrix::zeros(10, 2));
        store.mark_sparse(t);
        assert!(store.is_sparse_param(t));
        let g = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0], &[5.0, 6.0]]).unwrap();
        store.scatter_rows(t, &[7, 2, 7], &g);
        store.coalesce_sparse_grads();
        let dense = store.grad_to_dense(t);
        assert_eq!(dense.row(2), &[3.0, 4.0]);
        assert_eq!(dense.row(7), &[6.0, 8.0]);
        assert_eq!(
            store.grad_norm(&[t]),
            dense.as_slice().iter().map(|&v| v * v).sum::<f32>().sqrt()
        );
    }

    #[test]
    fn sparse_grad_norm_matches_dense_bitwise() {
        let mut dense_store = ParamStore::new();
        let mut sparse_store = ParamStore::new();
        let d = dense_store.add("t", Matrix::zeros(8, 3));
        let s = sparse_store.add("t", Matrix::zeros(8, 3));
        sparse_store.mark_sparse(s);
        let g = Matrix::from_fn(4, 3, |i, j| (i * 3 + j) as f32 * 0.37 - 1.1);
        let ids = [5u32, 1, 5, 0];
        dense_store.scatter_rows(d, &ids, &g);
        sparse_store.scatter_rows(s, &ids, &g);
        sparse_store.coalesce_sparse_grads();
        assert_eq!(dense_store.grad_norm(&[d]).to_bits(), sparse_store.grad_norm(&[s]).to_bits());
    }

    #[test]
    fn accumulate_dense_densifies_sparse_slot() {
        let mut store = ParamStore::new();
        let t = store.add("emb", Matrix::zeros(4, 2));
        store.mark_sparse(t);
        store.scatter_rows(t, &[1], &Matrix::full(1, 2, 2.0));
        store.accumulate_dense(t, &Matrix::full(4, 2, 1.0));
        assert!(!store.grad_entry(t).is_sparse());
        assert_eq!(store.grad(t).row(1), &[3.0, 3.0]);
        assert_eq!(store.grad(t).row(0), &[1.0, 1.0]);
        // zeroing restores the sparse representation
        store.zero_grads(&[t]);
        assert!(store.grad_entry(t).is_sparse());
    }

    #[test]
    fn full_occupancy_coalesce_densifies() {
        let mut store = ParamStore::new();
        let t = store.add("emb", Matrix::zeros(2, 2));
        store.mark_sparse(t);
        store.scatter_rows(t, &[0, 1], &Matrix::full(2, 2, 1.0));
        store.coalesce_sparse_grads();
        assert!(!store.grad_entry(t).is_sparse(), "full touch should fall back to dense");
    }

    #[test]
    #[should_panic(expected = "is sparse")]
    fn dense_view_of_sparse_grad_panics() {
        let mut store = ParamStore::new();
        let t = store.add("emb", Matrix::zeros(4, 2));
        store.mark_sparse(t);
        let _ = store.grad(t);
    }
}
