//! Compressed row storage for embedding-table parameters.
//!
//! A [`RowCodec`] is an alternative backing store for one `vocab x dim`
//! parameter slot: instead of a dense [`Matrix`], the slot holds a codec
//! that can *materialize* any subset of rows on demand and *absorb*
//! row-sparse gradients back into whatever factorized form it keeps.
//! The codec plugs in exactly at the two operations `Graph::gather` /
//! its backward already use — [`ParamStore::gather_rows`] and
//! [`ParamStore::scatter_rows`] — so models built on `gather` work
//! unchanged on top of a compressed table.
//!
//! The contract is deliberately narrow:
//!
//! * Codec slots are reachable **only** through the gather/scatter
//!   boundary. Whole-table views ([`ParamStore::value`],
//!   `Graph::param`) panic with a descriptive message — a factorized
//!   table has no dense matrix to hand out, and silently materializing
//!   one would defeat the point.
//! * Gradient state lives *inside* the codec (accumulated by
//!   [`RowCodec::scatter_grads`]), in whatever space the factorization
//!   makes natural — e.g. a tensor-train codec accumulates factor
//!   gradients, not row gradients.
//! * Only plain SGD can step a codec slot ([`RowCodec::sgd_step`]).
//!   Stateful optimizers (momentum, Adam, AdaGrad) would need per-codec
//!   moment layouts; they reject codec slots loudly instead of guessing.
//!
//! [`IdentityCodec`] is the trivial backend — a dense f32 table behind
//! the codec interface. It exists so the codec path itself can be pinned
//! bit-identical to the native dense-slot path (same gathers, same
//! scatters, same SGD updates), which separates "the plumbing is wrong"
//! from "the factorization is lossy" when testing real codecs.

use atnn_tensor::Matrix;

/// A compressed backing store for one row-addressable parameter table.
///
/// Implementations are registered with [`ParamStore::add_codec`] and
/// accessed through [`ParamStore::gather_rows`] /
/// [`ParamStore::scatter_rows`].
///
/// [`ParamStore::add_codec`]: crate::ParamStore::add_codec
/// [`ParamStore::gather_rows`]: crate::ParamStore::gather_rows
/// [`ParamStore::scatter_rows`]: crate::ParamStore::scatter_rows
pub trait RowCodec: std::fmt::Debug + Send + Sync {
    /// Logical number of rows (the vocabulary size).
    fn rows(&self) -> usize;

    /// Logical row width (the embedding dimension).
    fn dim(&self) -> usize;

    /// Materializes row `indices[k]` into `out.row_mut(k)` for every `k`.
    ///
    /// `out` has shape `indices.len() x dim()`; implementations must
    /// fill every element (rows may be dirty from a previous use).
    ///
    /// # Panics
    /// Panics when an index is out of range or `out` has the wrong shape.
    fn gather_into(&self, indices: &[u32], out: &mut Matrix);

    /// Accumulates the row gradients `g.row(k) -> row indices[k]` into
    /// the codec's internal gradient state (the backward of
    /// [`RowCodec::gather_into`]). Duplicate indices accumulate in
    /// occurrence order.
    ///
    /// # Panics
    /// Panics when an index is out of range or `g` has the wrong width.
    fn scatter_grads(&mut self, indices: &[u32], g: &Matrix);

    /// Clears the accumulated gradient state.
    fn zero_grads(&mut self);

    /// Sum of squares of the accumulated gradient state, in the codec's
    /// *parameter* space (factor gradients for a factorized codec — not
    /// the gradient of the virtual dense table). Feeds global-norm
    /// clipping, which therefore clips in parameter space too.
    fn grad_l2_sq(&self) -> f32;

    /// Rescales the accumulated gradient state by `alpha` (clipping).
    fn scale_grads(&mut self, alpha: f32);

    /// One plain-SGD update from the accumulated gradients: `theta -=
    /// lr * d theta`. Does not zero the gradients.
    fn sgd_step(&mut self, lr: f32);

    /// Number of trainable scalars the codec actually stores (the
    /// compression numerator is `rows() * dim()`).
    fn param_count(&self) -> usize;

    /// Resident bytes of the codec's value state (excluding gradients).
    fn storage_bytes(&self) -> usize;

    /// Clones the codec (including gradient state) behind a fresh box.
    fn clone_box(&self) -> Box<dyn RowCodec>;
}

impl Clone for Box<dyn RowCodec> {
    fn clone(&self) -> Self {
        self.clone_box()
    }
}

/// The identity backend: a dense f32 table behind the [`RowCodec`]
/// interface. Gathers, scatters and SGD steps are element-for-element
/// the computations the native dense slot performs, so a model trained
/// through an `IdentityCodec` slot is bit-identical to one trained
/// through a plain [`ParamStore::add`] slot under plain SGD (pinned by
/// test).
///
/// [`ParamStore::add`]: crate::ParamStore::add
#[derive(Debug, Clone)]
pub struct IdentityCodec {
    value: Matrix,
    grad: Matrix,
}

impl IdentityCodec {
    /// Wraps a dense table.
    pub fn new(value: Matrix) -> Self {
        let grad = Matrix::zeros(value.rows(), value.cols());
        Self { value, grad }
    }

    /// The underlying dense table (tests, export).
    pub fn value(&self) -> &Matrix {
        &self.value
    }
}

impl RowCodec for IdentityCodec {
    fn rows(&self) -> usize {
        self.value.rows()
    }

    fn dim(&self) -> usize {
        self.value.cols()
    }

    fn gather_into(&self, indices: &[u32], out: &mut Matrix) {
        assert_eq!(out.shape(), (indices.len(), self.dim()), "gather_into shape");
        for (k, &idx) in indices.iter().enumerate() {
            out.row_mut(k).copy_from_slice(self.value.row(idx as usize));
        }
    }

    fn scatter_grads(&mut self, indices: &[u32], g: &Matrix) {
        assert_eq!(g.shape(), (indices.len(), self.dim()), "scatter_grads shape");
        for (k, &idx) in indices.iter().enumerate() {
            let row = self.grad.row_mut(idx as usize);
            for (t, &d) in row.iter_mut().zip(g.row(k)) {
                *t += d;
            }
        }
    }

    fn zero_grads(&mut self) {
        self.grad.fill_zero();
    }

    fn grad_l2_sq(&self) -> f32 {
        self.grad.as_slice().iter().map(|&v| v * v).sum()
    }

    fn scale_grads(&mut self, alpha: f32) {
        self.grad.scale_assign(alpha);
    }

    fn sgd_step(&mut self, lr: f32) {
        self.value.add_assign_scaled(&self.grad, -lr).expect("identity codec shapes agree");
    }

    fn param_count(&self) -> usize {
        self.value.len()
    }

    fn storage_bytes(&self) -> usize {
        self.value.len() * 4
    }

    fn clone_box(&self) -> Box<dyn RowCodec> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_codec_round_trips_rows_and_grads() {
        let table = Matrix::from_fn(6, 3, |i, j| (i * 3 + j) as f32 * 0.5 - 2.0);
        let mut codec = IdentityCodec::new(table.clone());
        assert_eq!(codec.rows(), 6);
        assert_eq!(codec.dim(), 3);
        assert_eq!(codec.param_count(), 18);
        assert_eq!(codec.storage_bytes(), 18 * 4);

        let mut out = Matrix::zeros(3, 3);
        codec.gather_into(&[4, 0, 4], &mut out);
        assert_eq!(out.row(0), table.row(4));
        assert_eq!(out.row(1), table.row(0));
        assert_eq!(out.row(2), table.row(4));

        let g = Matrix::from_fn(3, 3, |i, j| (i + j) as f32);
        codec.scatter_grads(&[4, 0, 4], &g);
        // Row 4 hit twice: sums in occurrence order.
        let mut want4 = [0.0f32; 3];
        for (w, (&a, &b)) in want4.iter_mut().zip(g.row(0).iter().zip(g.row(2))) {
            *w = a + b;
        }
        assert_eq!(codec.grad.row(4), &want4);
        assert!(codec.grad_l2_sq() > 0.0);

        codec.sgd_step(0.5);
        for (j, &gj) in want4.iter().enumerate() {
            let want = table.get(4, j) - 0.5 * gj;
            assert_eq!(codec.value().get(4, j), want);
        }
        codec.zero_grads();
        assert_eq!(codec.grad_l2_sq(), 0.0);
    }
}
