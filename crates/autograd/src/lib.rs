//! Tape-based reverse-mode automatic differentiation over [`atnn_tensor`].
//!
//! This crate is the second substrate of the ATNN reproduction: it plays the
//! role TensorFlow's graph/gradient machinery plays in the paper's original
//! implementation.
//!
//! # Model
//! - Trainable state lives in a [`ParamStore`]: each parameter is a named
//!   slot holding a value matrix and a gradient matrix.
//! - A [`Graph`] is a *tape*: operations execute eagerly and append a node
//!   recording the op, its parents and its value. [`Graph::backward`] walks
//!   the tape in reverse, accumulating gradients into the nodes and finally
//!   into the store.
//! - Embedding lookups use [`Graph::gather`], which copies only the rows a
//!   batch touches and scatters gradients back by row — the standard
//!   large-vocabulary optimization (the paper's embedding tables map
//!   "large-scale sparse features to low-rank vectors"). Tables declared
//!   with [`ParamStore::mark_sparse`] keep those gradients in a row-sparse
//!   representation ([`Grad::Sparse`]), so per-step cost scales with the
//!   batch, not the vocabulary.
//! - Tables too large to hold densely can be registered through
//!   [`ParamStore::add_codec`] with a compressed [`RowCodec`] backend
//!   (identity today, factorized codecs in `atnn-nn`); they are reachable
//!   only through the same gather/scatter boundary — see [`codec`].
//!
//! # Shape errors
//! Graph ops assert shapes and panic with a descriptive message: a shape
//! mismatch inside a fixed architecture is a programming bug, not a
//! recoverable condition. Fallible, `Result`-returning shape checks live one
//! level down in `atnn-tensor` for callers that need them.
//!
//! # Example
//! ```
//! use atnn_autograd::{Graph, ParamStore};
//! use atnn_tensor::{Init, Matrix, Rng64};
//!
//! let mut store = ParamStore::new();
//! let mut rng = Rng64::seed_from_u64(0);
//! let w = store.add("w", Init::XavierUniform.sample(3, 1, &mut rng));
//!
//! let mut g = Graph::new();
//! let x = g.input(Matrix::from_rows(&[&[1.0, 2.0, 3.0]]).unwrap());
//! let wv = g.param(&store, w);
//! let y = g.matmul(x, wv);
//! let loss = g.mse_loss(y, &Matrix::from_rows(&[&[5.0]]).unwrap());
//! g.backward(loss, &mut store);
//! assert_eq!(store.grad(w).shape(), (3, 1));
//! ```

mod check;
pub mod codec;
mod graph;
mod store;

pub use check::{check_gradients, numeric_gradient};
pub use codec::{IdentityCodec, RowCodec};
pub use graph::{Graph, Var};
pub use store::{Grad, ParamId, ParamStore};
