//! Finite-difference gradient checking.
//!
//! Every differentiable op in this crate is validated against central
//! differences (see `tests/grad_check.rs`); these helpers are public so
//! downstream crates (layers, models) can check their own compositions.

use atnn_tensor::Matrix;

use crate::{Graph, ParamId, ParamStore};

/// Central-difference gradient of `loss_fn` with respect to `param`.
///
/// `loss_fn` must be a pure function of the store (it is invoked many
/// times with perturbed parameter values).
pub fn numeric_gradient(
    store: &mut ParamStore,
    param: ParamId,
    eps: f32,
    mut loss_fn: impl FnMut(&ParamStore) -> f32,
) -> Matrix {
    let (rows, cols) = store.value(param).shape();
    let mut grad = Matrix::zeros(rows, cols);
    for i in 0..rows * cols {
        let original = store.value(param).as_slice()[i];
        store.value_mut(param).as_mut_slice()[i] = original + eps;
        let up = loss_fn(store);
        store.value_mut(param).as_mut_slice()[i] = original - eps;
        let down = loss_fn(store);
        store.value_mut(param).as_mut_slice()[i] = original;
        grad.as_mut_slice()[i] = (up - down) / (2.0 * eps);
    }
    grad
}

/// Checks the analytic gradients of `build` against central differences for
/// every parameter in `params`.
///
/// `build` constructs the forward graph and returns the scalar loss node.
/// Returns `Err` with a human-readable description of the worst mismatch
/// when any element differs by more than `tol` (relative to magnitude).
pub fn check_gradients(
    store: &mut ParamStore,
    params: &[ParamId],
    tol: f32,
    mut build: impl FnMut(&mut Graph, &ParamStore) -> crate::Var,
) -> Result<(), String> {
    // Analytic pass.
    store.zero_all_grads();
    let mut graph = Graph::new();
    let loss = build(&mut graph, store);
    graph.backward(loss, store);
    let analytic: Vec<Matrix> = params.iter().map(|&p| store.grad_to_dense(p)).collect();

    for (k, &param) in params.iter().enumerate() {
        let numeric = numeric_gradient(store, param, 1e-2, |s| {
            let mut g = Graph::new();
            let l = build(&mut g, s);
            g.value(l).get(0, 0)
        });
        for i in 0..numeric.len() {
            let a = analytic[k].as_slice()[i];
            let n = numeric.as_slice()[i];
            let denom = 1.0f32.max(a.abs()).max(n.abs());
            if (a - n).abs() / denom > tol {
                return Err(format!(
                    "param '{}' element {i}: analytic {a} vs numeric {n}",
                    store.name(param)
                ));
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use atnn_tensor::{Init, Rng64};

    #[test]
    fn numeric_gradient_of_quadratic() {
        // loss = sum(x^2) -> grad = 2x
        let mut store = ParamStore::new();
        let p = store.add("x", Matrix::row_vector(&[1.0, -2.0, 0.5]));
        let g = numeric_gradient(&mut store, p, 1e-3, |s| {
            s.value(p).as_slice().iter().map(|&v| v * v).sum()
        });
        for (got, want) in g.as_slice().iter().zip([2.0, -4.0, 1.0]) {
            assert!((got - want).abs() < 1e-2, "{got} vs {want}");
        }
        // The store must be restored to its original values afterwards.
        assert_eq!(store.value(p).as_slice(), &[1.0, -2.0, 0.5]);
    }

    #[test]
    fn check_gradients_accepts_correct_graph() {
        let mut rng = Rng64::seed_from_u64(10);
        let mut store = ParamStore::new();
        let w = store.add("w", Init::Normal(0.5).sample(3, 2, &mut rng));
        let x = Init::Normal(1.0).sample(4, 3, &mut rng);
        let y = Init::Normal(1.0).sample(4, 2, &mut rng);
        check_gradients(&mut store, &[w], 1e-2, |g, s| {
            let xv = g.input(x.clone());
            let wv = g.param(s, w);
            let pred = g.matmul(xv, wv);
            g.mse_loss(pred, &y)
        })
        .unwrap();
    }

    #[test]
    fn check_gradients_rejects_wrong_graph() {
        // Cheat: scale the loss in the analytic pass only, via a counter.
        let mut store = ParamStore::new();
        let w = store.add("w", Matrix::row_vector(&[1.0]));
        let mut calls = 0u32;
        let result = check_gradients(&mut store, &[w], 1e-3, move |g, s| {
            calls += 1;
            let wv = g.param(s, w);
            let scaled = g.mul_scalar(wv, if calls == 1 { 3.0 } else { 1.0 });
            g.sum(scaled)
        });
        assert!(result.is_err());
    }
}
