//! The tape: eager-forward, reverse-backward computation graph.

use atnn_tensor::{ActKind, Matrix};

use crate::{ParamId, ParamStore};

/// Handle to a node on the tape. Only valid for the [`Graph`] that issued it
/// and only until [`Graph::clear`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Var(usize);

#[derive(Debug)]
enum Op {
    /// Leaf with no gradient (mini-batch features, labels, constants).
    Input,
    /// Leaf backed by a parameter slot; gradients flow into the store.
    Param(ParamId),
    /// Sparse row lookup into a parameter (embedding tables).
    Gather {
        param: ParamId,
        indices: Vec<u32>,
    },
    MatMul(Var, Var),
    /// Fused `act(x @ w + b)` layer: one tape node, one memory sweep.
    /// Holds the parameter ids directly (no `Param` leaf clones).
    Linear {
        x: Var,
        w: ParamId,
        b: Option<ParamId>,
        act: ActKind,
    },
    Add(Var, Var),
    Sub(Var, Var),
    Mul(Var, Var),
    AddRowBroadcast(Var, Var),
    MulRowBroadcast(Var, Var),
    ScaleRows(Var, Var),
    RowwiseDot(Var, Var),
    RowwiseCosine(Var, Var),
    ConcatCols(Var, Var),
    Sigmoid(Var),
    Tanh(Var),
    Relu(Var),
    LeakyRelu(Var, f32),
    Rsqrt(Var, f32),
    MulScalar(Var, f32),
    // The offset is not needed for the backward pass but kept for Debug.
    AddScalar(Var, #[allow(dead_code)] f32),
    MulMask(Var, Matrix),
    Mean(Var),
    Sum(Var),
    MseLoss {
        pred: Var,
        target: Matrix,
    },
    BceWithLogits {
        logits: Var,
        targets: Matrix,
        /// `σ(logits)` cached by the fused forward sweep (shares the
        /// `exp(-|z|)` with the loss terms), consumed by backward.
        probs: Matrix,
    },
    // The parent is deliberately not visited in backward; kept for Debug.
    Detach(#[allow(dead_code)] Var),
}

#[derive(Debug)]
struct Node {
    op: Op,
    value: Matrix,
}

/// A computation tape. Build one per mini-batch (or call [`Graph::clear`]
/// to reuse the allocation), run ops eagerly, then call
/// [`Graph::backward`] on a scalar loss.
#[derive(Debug, Default)]
pub struct Graph {
    nodes: Vec<Node>,
    /// Scratch-matrix arena for backward; retained across batches so the
    /// steady-state training step allocates no per-node gradients.
    ws: Workspace,
    /// Per-node gradient slots, reused across `backward` calls.
    grad_slots: Vec<Option<Matrix>>,
}

/// Free-list of `f32` buffers recycled as backward-pass scratch matrices.
///
/// `take` pops (or grows) a buffer and hands it back as a zeroed matrix
/// of the requested shape; `give` returns a matrix's storage to the
/// list. Buffers keep their high-water capacity, so after the first few
/// batches every `take` is a pop + `memset` with no allocation.
#[derive(Debug, Default)]
struct Workspace {
    free: Vec<Vec<f32>>,
}

impl Workspace {
    /// A zeroed `rows x cols` matrix backed by recycled storage.
    fn take(&mut self, rows: usize, cols: usize) -> Matrix {
        let mut buf = self.free.pop().unwrap_or_default();
        buf.clear();
        buf.resize(rows * cols, 0.0);
        Matrix::from_vec(rows, cols, buf).expect("workspace buffer sized to shape")
    }

    /// Returns a matrix's storage to the free list.
    fn give(&mut self, m: Matrix) {
        let buf = m.into_vec();
        if buf.capacity() > 0 {
            self.free.push(buf);
        }
    }
}

/// Numerically stable logistic function — the canonical `stable_sigmoid`
/// from `atnn-tensor`, shared so the fused epilogue, the `Sigmoid` node and
/// the BCE loss all round identically.
pub(crate) use atnn_tensor::stable_sigmoid as sigmoid;

impl Graph {
    /// Creates an empty tape.
    pub fn new() -> Self {
        Self::default()
    }

    /// Drops all nodes but keeps the allocation, ready for the next batch.
    pub fn clear(&mut self) {
        self.nodes.clear();
    }

    /// Number of nodes currently on the tape.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when the tape is empty.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// The forward value of a node.
    pub fn value(&self, var: Var) -> &Matrix {
        &self.nodes[var.0].value
    }

    fn push(&mut self, op: Op, value: Matrix) -> Var {
        self.nodes.push(Node { op, value });
        Var(self.nodes.len() - 1)
    }

    fn val(&self, var: Var) -> &Matrix {
        &self.nodes[var.0].value
    }

    // ------------------------------------------------------------------
    // Leaves
    // ------------------------------------------------------------------

    /// Adds a gradient-free leaf (features, labels, constants).
    pub fn input(&mut self, value: Matrix) -> Var {
        self.push(Op::Input, value)
    }

    /// Adds a parameter leaf; its value is copied from the store and
    /// gradients are routed back to the slot on `backward`.
    pub fn param(&mut self, store: &ParamStore, id: ParamId) -> Var {
        self.push(Op::Param(id), store.value(id).clone())
    }

    /// Embedding lookup: returns the rows of `store[id]` at `indices`
    /// (shape `indices.len() x dim`) without copying the full table.
    ///
    /// # Panics
    /// Panics when any index is out of range for the table.
    pub fn gather(&mut self, store: &ParamStore, id: ParamId, indices: &[u32]) -> Var {
        let value = store.gather_rows(id, indices);
        self.push(Op::Gather { param: id, indices: indices.to_vec() }, value)
    }

    // ------------------------------------------------------------------
    // Binary ops
    // ------------------------------------------------------------------

    /// Matrix product `a @ b`.
    pub fn matmul(&mut self, a: Var, b: Var) -> Var {
        let value = self.val(a).matmul(self.val(b)).unwrap_or_else(|e| panic!("matmul: {e}"));
        self.push(Op::MatMul(a, b), value)
    }

    /// Fused dense layer `act(x @ w + b)`: matmul, bias add and activation
    /// run in one output sweep (the `linear_bias_act` kernel), and the tape
    /// records one node instead of three — no `Param` leaf value clones.
    ///
    /// Bit-identical to the unfused `param`/`matmul`/`add_row_broadcast`/
    /// activation chain in both the forward values and the gradients
    /// accumulated into `store`.
    pub fn linear(
        &mut self,
        store: &ParamStore,
        x: Var,
        w: ParamId,
        b: Option<ParamId>,
        act: ActKind,
    ) -> Var {
        let bias = b.map(|id| store.value(id));
        let value = self
            .val(x)
            .linear_bias_act(store.value(w), bias, act)
            .unwrap_or_else(|e| panic!("linear('{}'): {e}", store.name(w)));
        self.push(Op::Linear { x, w, b, act }, value)
    }

    /// Elementwise `a + b` (same shapes).
    pub fn add(&mut self, a: Var, b: Var) -> Var {
        let value = self.val(a).add(self.val(b)).unwrap_or_else(|e| panic!("add: {e}"));
        self.push(Op::Add(a, b), value)
    }

    /// Elementwise `a - b` (same shapes).
    pub fn sub(&mut self, a: Var, b: Var) -> Var {
        let value = self.val(a).sub(self.val(b)).unwrap_or_else(|e| panic!("sub: {e}"));
        self.push(Op::Sub(a, b), value)
    }

    /// Elementwise `a * b` (same shapes).
    pub fn mul(&mut self, a: Var, b: Var) -> Var {
        let value = self.val(a).hadamard(self.val(b)).unwrap_or_else(|e| panic!("mul: {e}"));
        self.push(Op::Mul(a, b), value)
    }

    /// Adds a `1 x cols` bias row to every row of `x`.
    pub fn add_row_broadcast(&mut self, x: Var, bias: Var) -> Var {
        let value = self
            .val(x)
            .add_row_broadcast(self.val(bias))
            .unwrap_or_else(|e| panic!("add_row_broadcast: {e}"));
        self.push(Op::AddRowBroadcast(x, bias), value)
    }

    /// Multiplies every row of `x` elementwise by a `1 x cols` row vector
    /// (e.g. a layer-norm gain).
    pub fn mul_row_broadcast(&mut self, x: Var, scale: Var) -> Var {
        let (xv, sv) = (self.val(x), self.val(scale));
        assert_eq!(sv.rows(), 1, "mul_row_broadcast: scale must be 1 x cols");
        assert_eq!(sv.cols(), xv.cols(), "mul_row_broadcast: width mismatch");
        let mut value = xv.clone();
        let s = sv.row(0).to_vec();
        for i in 0..value.rows() {
            for (v, &m) in value.row_mut(i).iter_mut().zip(&s) {
                *v *= m;
            }
        }
        self.push(Op::MulRowBroadcast(x, scale), value)
    }

    /// Scales row `i` of `x` by `s[i][0]` (`s` is `rows x 1`). This is the
    /// `x0 * (x_l w)` term of a DCN cross layer.
    pub fn scale_rows(&mut self, x: Var, s: Var) -> Var {
        let value =
            self.val(x).scale_rows(self.val(s)).unwrap_or_else(|e| panic!("scale_rows: {e}"));
        self.push(Op::ScaleRows(x, s), value)
    }

    /// Row-wise dot product -> `rows x 1`. The two-tower scoring function
    /// `H(v_item, v_user)` before the sigmoid.
    pub fn rowwise_dot(&mut self, a: Var, b: Var) -> Var {
        let value =
            self.val(a).rowwise_dot(self.val(b)).unwrap_or_else(|e| panic!("rowwise_dot: {e}"));
        self.push(Op::RowwiseDot(a, b), value)
    }

    /// Row-wise cosine similarity -> `rows x 1`. The similarity `S(·,·)` of
    /// the paper's adversarial loss `L_s = mean((1 - s)^2)`.
    pub fn rowwise_cosine(&mut self, a: Var, b: Var) -> Var {
        let (av, bv) = (self.val(a), self.val(b));
        assert_eq!(av.shape(), bv.shape(), "rowwise_cosine: shape mismatch");
        let mut value = Matrix::zeros(av.rows(), 1);
        for i in 0..av.rows() {
            value.set(i, 0, atnn_tensor::cosine(av.row(i), bv.row(i)));
        }
        self.push(Op::RowwiseCosine(a, b), value)
    }

    /// Horizontal concatenation `[a | b]` (same row counts).
    pub fn concat_cols(&mut self, a: Var, b: Var) -> Var {
        let value =
            self.val(a).concat_cols(self.val(b)).unwrap_or_else(|e| panic!("concat_cols: {e}"));
        self.push(Op::ConcatCols(a, b), value)
    }

    /// Concatenates many vars left-to-right.
    pub fn concat_all(&mut self, vars: &[Var]) -> Var {
        assert!(!vars.is_empty(), "concat_all: empty input");
        let mut acc = vars[0];
        for &v in &vars[1..] {
            acc = self.concat_cols(acc, v);
        }
        acc
    }

    // ------------------------------------------------------------------
    // Unary ops
    // ------------------------------------------------------------------

    /// Elementwise logistic function.
    pub fn sigmoid(&mut self, x: Var) -> Var {
        let value = self.val(x).map(sigmoid);
        self.push(Op::Sigmoid(x), value)
    }

    /// Elementwise hyperbolic tangent.
    pub fn tanh(&mut self, x: Var) -> Var {
        let value = self.val(x).map(f32::tanh);
        self.push(Op::Tanh(x), value)
    }

    /// Elementwise rectifier `max(x, 0)`.
    pub fn relu(&mut self, x: Var) -> Var {
        let value = self.val(x).map(|v| v.max(0.0));
        self.push(Op::Relu(x), value)
    }

    /// Elementwise leaky rectifier (`alpha * x` for negative inputs).
    pub fn leaky_relu(&mut self, x: Var, alpha: f32) -> Var {
        let value = self.val(x).map(|v| if v > 0.0 { v } else { alpha * v });
        self.push(Op::LeakyRelu(x, alpha), value)
    }

    /// Elementwise `1 / sqrt(x + eps)` (inputs must keep `x + eps > 0`,
    /// which holds for the variance terms this op exists for).
    pub fn rsqrt(&mut self, x: Var, eps: f32) -> Var {
        let value = self.val(x).map(|v| 1.0 / (v + eps).sqrt());
        self.push(Op::Rsqrt(x, eps), value)
    }

    /// Multiplies every element by a scalar.
    pub fn mul_scalar(&mut self, x: Var, c: f32) -> Var {
        let value = self.val(x).scale(c);
        self.push(Op::MulScalar(x, c), value)
    }

    /// Adds a scalar to every element.
    pub fn add_scalar(&mut self, x: Var, c: f32) -> Var {
        let value = self.val(x).map(|v| v + c);
        self.push(Op::AddScalar(x, c), value)
    }

    /// Elementwise multiply by a fixed (gradient-free) mask. With an
    /// inverted-dropout mask (`0` or `1/keep_prob`) this is dropout.
    pub fn mul_mask(&mut self, x: Var, mask: &Matrix) -> Var {
        let value = self.val(x).hadamard(mask).unwrap_or_else(|e| panic!("mul_mask: {e}"));
        self.push(Op::MulMask(x, mask.clone()), value)
    }

    /// Mean of all elements -> `1 x 1`.
    pub fn mean(&mut self, x: Var) -> Var {
        let value = Matrix::full(1, 1, self.val(x).mean());
        self.push(Op::Mean(x), value)
    }

    /// Sum of all elements -> `1 x 1`.
    pub fn sum(&mut self, x: Var) -> Var {
        let value = Matrix::full(1, 1, self.val(x).sum());
        self.push(Op::Sum(x), value)
    }

    /// Identity in the forward pass; blocks gradients in the backward pass.
    ///
    /// Used in the generator step of Algorithm 1: the similarity target
    /// `f_i(X_i)` is detached so the generator chases the encoder, not the
    /// other way around.
    pub fn detach(&mut self, x: Var) -> Var {
        let value = self.val(x).clone();
        self.push(Op::Detach(x), value)
    }

    // ------------------------------------------------------------------
    // Losses
    // ------------------------------------------------------------------

    /// Mean squared error `mean((pred - target)^2)` -> `1 x 1`.
    pub fn mse_loss(&mut self, pred: Var, target: &Matrix) -> Var {
        let p = self.val(pred);
        assert_eq!(p.shape(), target.shape(), "mse_loss: shape mismatch");
        let n = p.len().max(1) as f32;
        let loss = p
            .as_slice()
            .iter()
            .zip(target.as_slice())
            .map(|(&a, &b)| (a - b) * (a - b))
            .sum::<f32>()
            / n;
        self.push(Op::MseLoss { pred, target: target.clone() }, Matrix::full(1, 1, loss))
    }

    /// Numerically stable sigmoid cross-entropy from *logits* -> `1 x 1`.
    ///
    /// This is the paper's `L_i` / `L_g` CTR loss:
    /// `-(1/N) Σ [ y log ŷ + (1-y) log(1-ŷ) ]` with `ŷ = σ(logit)`.
    pub fn bce_with_logits_loss(&mut self, logits: Var, targets: &Matrix) -> Var {
        let z = self.val(logits);
        assert_eq!(z.shape(), targets.shape(), "bce_with_logits_loss: shape mismatch");
        let n = z.len().max(1) as f32;
        // max(z,0) - y*z + ln(1 + exp(-|z|)) is the standard stable form.
        // The same exp(-|z|) also yields σ(z) branch-for-branch identical
        // to `stable_sigmoid` (z ≥ 0: 1/(1+e); z < 0: e/(1+e)), so the
        // probabilities backward needs are cached here for free instead of
        // re-exponentiating the whole batch in the backward sweep.
        let mut probs = Matrix::zeros(z.rows(), z.cols());
        let mut loss = 0.0f32;
        for ((p, &zv), &y) in
            probs.as_mut_slice().iter_mut().zip(z.as_slice()).zip(targets.as_slice())
        {
            let e = (-zv.abs()).exp();
            loss += zv.max(0.0) - y * zv + (1.0 + e).ln();
            *p = if zv >= 0.0 { 1.0 / (1.0 + e) } else { e / (1.0 + e) };
        }
        loss /= n;
        self.push(
            Op::BceWithLogits { logits, targets: targets.clone(), probs },
            Matrix::full(1, 1, loss),
        )
    }

    // ------------------------------------------------------------------
    // Backward
    // ------------------------------------------------------------------

    /// Reverse-mode sweep from the scalar `loss` node. Gradients of
    /// parameter leaves are **accumulated** into `store` (call
    /// [`ParamStore::zero_grads`] between steps); sparse-declared slots
    /// receive only their touched rows and are left coalesced.
    ///
    /// Per-node scratch matrices come from a workspace arena retained on
    /// the graph, so repeated `clear()` + rebuild + `backward` cycles on
    /// the same `Graph` stop allocating once buffer capacities warm up.
    ///
    /// # Panics
    /// Panics when `loss` is not `1 x 1`.
    pub fn backward(&mut self, loss: Var, store: &mut ParamStore) {
        assert_eq!(self.val(loss).shape(), (1, 1), "backward: loss must be a scalar node");
        // Timing is gated on the obs enabled flag so the disabled cost is
        // one atomic load — no `Instant::now`, no event, no allocation.
        let t0 = atnn_obs::timing_enabled().then(std::time::Instant::now);
        let Graph { nodes, ws, grad_slots } = self;
        grad_slots.clear();
        grad_slots.resize_with(nodes.len(), || None);
        let mut seed = ws.take(1, 1);
        seed.set(0, 0, 1.0);
        grad_slots[loss.0] = Some(seed);

        for id in (0..=loss.0).rev() {
            let Some(g) = grad_slots[id].take() else { continue };
            // Split-borrow: the node being processed vs. earlier nodes.
            let (before, at) = nodes.split_at_mut(id);
            let node = &at[0];
            let val_of = |v: Var| -> &Matrix { &before[v.0].value };
            match &node.op {
                Op::Input => ws.give(g),
                Op::Param(pid) => {
                    store.accumulate_dense(*pid, &g);
                    ws.give(g);
                }
                Op::Gather { param, indices } => {
                    store.scatter_rows(*param, indices, &g);
                    ws.give(g);
                }
                Op::MatMul(a, b) => {
                    // da = g @ bᵀ and db = aᵀ @ g, both through the packed
                    // gemm (packing absorbs the transposes — no transpose
                    // is ever materialized) into arena buffers.
                    let (av, bv) = (val_of(*a), val_of(*b));
                    let mut da = ws.take(g.rows(), bv.rows());
                    g.matmul_nt_into(bv, &mut da).expect("matmul da");
                    let mut db = ws.take(av.cols(), g.cols());
                    av.matmul_tn_into(&g, &mut db).expect("matmul db");
                    ws.give(g);
                    accumulate(grad_slots, ws, *a, da);
                    accumulate(grad_slots, ws, *b, db);
                }
                Op::Linear { x, w, b, act } => {
                    // One fused arm replacing the activation, bias and
                    // matmul backward steps. Each piece reuses the exact
                    // expression of its unfused counterpart: the activation
                    // masks via the output y (for Relu/LeakyRelu the sign
                    // of y matches the sign of the pre-activation, so the
                    // mask is the same), dbias is the rows-ascending column
                    // sum, dw = xᵀ @ g' and dx = g' @ wᵀ via packed gemm.
                    let y = &node.value;
                    let mut gm = g;
                    match act {
                        ActKind::Identity => {}
                        ActKind::Relu => {
                            for (d, &yv) in gm.as_mut_slice().iter_mut().zip(y.as_slice()) {
                                if yv <= 0.0 {
                                    *d = 0.0;
                                }
                            }
                        }
                        ActKind::LeakyRelu(alpha) => {
                            for (d, &yv) in gm.as_mut_slice().iter_mut().zip(y.as_slice()) {
                                if yv <= 0.0 {
                                    *d *= alpha;
                                }
                            }
                        }
                        ActKind::Tanh => {
                            for (d, &yv) in gm.as_mut_slice().iter_mut().zip(y.as_slice()) {
                                *d *= 1.0 - yv * yv;
                            }
                        }
                        ActKind::Sigmoid => {
                            for (d, &yv) in gm.as_mut_slice().iter_mut().zip(y.as_slice()) {
                                *d *= yv * (1.0 - yv);
                            }
                        }
                    }
                    if let Some(bid) = b {
                        let mut dbias = ws.take(1, gm.cols());
                        for i in 0..gm.rows() {
                            for (o, &v) in dbias.row_mut(0).iter_mut().zip(gm.row(i)) {
                                *o += v;
                            }
                        }
                        store.accumulate_dense(*bid, &dbias);
                        ws.give(dbias);
                    }
                    let xv = val_of(*x);
                    let mut dw = ws.take(xv.cols(), gm.cols());
                    xv.matmul_tn_into(&gm, &mut dw).expect("linear dw");
                    store.accumulate_dense(*w, &dw);
                    ws.give(dw);
                    let wv = store.value(*w);
                    let mut dx = ws.take(gm.rows(), wv.rows());
                    gm.matmul_nt_into(wv, &mut dx).expect("linear dx");
                    ws.give(gm);
                    accumulate(grad_slots, ws, *x, dx);
                }
                Op::Add(a, b) => {
                    let mut da = ws.take(g.rows(), g.cols());
                    da.as_mut_slice().copy_from_slice(g.as_slice());
                    accumulate(grad_slots, ws, *a, da);
                    accumulate(grad_slots, ws, *b, g);
                }
                Op::Sub(a, b) => {
                    let mut db = ws.take(g.rows(), g.cols());
                    db.as_mut_slice().copy_from_slice(g.as_slice());
                    db.scale_assign(-1.0);
                    accumulate(grad_slots, ws, *a, g);
                    accumulate(grad_slots, ws, *b, db);
                }
                Op::Mul(a, b) => {
                    let (av, bv) = (val_of(*a), val_of(*b));
                    let mut db = ws.take(g.rows(), g.cols());
                    for ((o, &gv), &avv) in
                        db.as_mut_slice().iter_mut().zip(g.as_slice()).zip(av.as_slice())
                    {
                        *o = gv * avv;
                    }
                    let mut da = g;
                    for (d, &bvv) in da.as_mut_slice().iter_mut().zip(bv.as_slice()) {
                        *d *= bvv;
                    }
                    accumulate(grad_slots, ws, *a, da);
                    accumulate(grad_slots, ws, *b, db);
                }
                Op::AddRowBroadcast(x, bias) => {
                    // dbias = column sums of g, accumulated rows-ascending
                    // (the sum_rows order).
                    let mut dbias = ws.take(1, g.cols());
                    for i in 0..g.rows() {
                        for (o, &v) in dbias.row_mut(0).iter_mut().zip(g.row(i)) {
                            *o += v;
                        }
                    }
                    accumulate(grad_slots, ws, *bias, dbias);
                    accumulate(grad_slots, ws, *x, g);
                }
                Op::MulRowBroadcast(x, scale) => {
                    // dx = g ⊙ (scale broadcast); dscale = column sums of g ⊙ x.
                    let xv = val_of(*x);
                    let mut ds = ws.take(1, g.cols());
                    for i in 0..g.rows() {
                        for ((o, &gv), &xvv) in
                            ds.row_mut(0).iter_mut().zip(g.row(i)).zip(xv.row(i))
                        {
                            *o += gv * xvv;
                        }
                    }
                    let sv = val_of(*scale);
                    let srow = sv.row(0);
                    let mut dx = g;
                    for i in 0..dx.rows() {
                        for (v, &m) in dx.row_mut(i).iter_mut().zip(srow) {
                            *v *= m;
                        }
                    }
                    accumulate(grad_slots, ws, *x, dx);
                    accumulate(grad_slots, ws, *scale, ds);
                }
                Op::ScaleRows(x, s) => {
                    // ds[i] = Σ_j g[i][j] * x[i][j] (the hadamard+sum_cols
                    // left-to-right order); dx = g with row i scaled by s[i].
                    let xv = val_of(*x);
                    let mut ds = ws.take(g.rows(), 1);
                    for i in 0..g.rows() {
                        let mut acc = 0.0f32;
                        for (&gv, &xvv) in g.row(i).iter().zip(xv.row(i)) {
                            acc += gv * xvv;
                        }
                        ds.set(i, 0, acc);
                    }
                    let sv = val_of(*s);
                    let mut dx = g;
                    for i in 0..dx.rows() {
                        let m = sv.get(i, 0);
                        for v in dx.row_mut(i) {
                            *v *= m;
                        }
                    }
                    accumulate(grad_slots, ws, *x, dx);
                    accumulate(grad_slots, ws, *s, ds);
                }
                Op::RowwiseDot(a, b) => {
                    let (av, bv) = (val_of(*a), val_of(*b));
                    let mut da = ws.take(av.rows(), av.cols());
                    let mut db = ws.take(av.rows(), av.cols());
                    for i in 0..av.rows() {
                        let gi = g.get(i, 0);
                        for (o, &bvv) in da.row_mut(i).iter_mut().zip(bv.row(i)) {
                            *o = bvv * gi;
                        }
                        for (o, &avv) in db.row_mut(i).iter_mut().zip(av.row(i)) {
                            *o = avv * gi;
                        }
                    }
                    ws.give(g);
                    accumulate(grad_slots, ws, *a, da);
                    accumulate(grad_slots, ws, *b, db);
                }
                Op::RowwiseCosine(a, b) => {
                    let (av, bv) = (val_of(*a), val_of(*b));
                    let cos = &node.value;
                    let mut da = ws.take(av.rows(), av.cols());
                    let mut db = ws.take(av.rows(), av.cols());
                    for i in 0..av.rows() {
                        let (ar, br) = (av.row(i), bv.row(i));
                        let na = atnn_tensor::dot(ar, ar).sqrt();
                        let nb = atnn_tensor::dot(br, br).sqrt();
                        if na < 1e-12 || nb < 1e-12 {
                            continue; // cosine defined as 0; treat as flat
                        }
                        let gi = g.get(i, 0);
                        let c = cos.get(i, 0);
                        let dar = da.row_mut(i);
                        for ((d, &aj), &bj) in dar.iter_mut().zip(ar).zip(br) {
                            *d = gi * (bj / (na * nb) - c * aj / (na * na));
                        }
                        let dbr = db.row_mut(i);
                        for ((d, &aj), &bj) in dbr.iter_mut().zip(ar).zip(br) {
                            *d = gi * (aj / (na * nb) - c * bj / (nb * nb));
                        }
                    }
                    ws.give(g);
                    accumulate(grad_slots, ws, *a, da);
                    accumulate(grad_slots, ws, *b, db);
                }
                Op::ConcatCols(a, b) => {
                    let ca = val_of(*a).cols();
                    let cb = g.cols() - ca;
                    let mut da = ws.take(g.rows(), ca);
                    let mut db = ws.take(g.rows(), cb);
                    for i in 0..g.rows() {
                        let gr = g.row(i);
                        da.row_mut(i).copy_from_slice(&gr[..ca]);
                        db.row_mut(i).copy_from_slice(&gr[ca..]);
                    }
                    ws.give(g);
                    accumulate(grad_slots, ws, *a, da);
                    accumulate(grad_slots, ws, *b, db);
                }
                Op::Sigmoid(x) => {
                    let y = &node.value;
                    let mut dx = g;
                    for (d, &yv) in dx.as_mut_slice().iter_mut().zip(y.as_slice()) {
                        *d *= yv * (1.0 - yv);
                    }
                    accumulate(grad_slots, ws, *x, dx);
                }
                Op::Tanh(x) => {
                    let y = &node.value;
                    let mut dx = g;
                    for (d, &yv) in dx.as_mut_slice().iter_mut().zip(y.as_slice()) {
                        *d *= 1.0 - yv * yv;
                    }
                    accumulate(grad_slots, ws, *x, dx);
                }
                Op::Relu(x) => {
                    let xv = val_of(*x);
                    let mut dx = g;
                    for (d, &v) in dx.as_mut_slice().iter_mut().zip(xv.as_slice()) {
                        if v <= 0.0 {
                            *d = 0.0;
                        }
                    }
                    accumulate(grad_slots, ws, *x, dx);
                }
                Op::LeakyRelu(x, alpha) => {
                    let xv = val_of(*x);
                    let mut dx = g;
                    for (d, &v) in dx.as_mut_slice().iter_mut().zip(xv.as_slice()) {
                        if v <= 0.0 {
                            *d *= alpha;
                        }
                    }
                    accumulate(grad_slots, ws, *x, dx);
                }
                Op::Rsqrt(x, eps) => {
                    // d/dx (x+eps)^(-1/2) = -1/2 (x+eps)^(-3/2) = -y³/2.
                    let y = &node.value;
                    let _ = eps;
                    let mut dx = g;
                    for (d, &yv) in dx.as_mut_slice().iter_mut().zip(y.as_slice()) {
                        *d *= -0.5 * yv * yv * yv;
                    }
                    accumulate(grad_slots, ws, *x, dx);
                }
                Op::MulScalar(x, c) => {
                    let mut dx = g;
                    dx.scale_assign(*c);
                    accumulate(grad_slots, ws, *x, dx);
                }
                Op::AddScalar(x, _) => accumulate(grad_slots, ws, *x, g),
                Op::MulMask(x, mask) => {
                    let mut dx = g;
                    for (d, &mv) in dx.as_mut_slice().iter_mut().zip(mask.as_slice()) {
                        *d *= mv;
                    }
                    accumulate(grad_slots, ws, *x, dx);
                }
                Op::Mean(x) => {
                    let xv = val_of(*x);
                    let scale = g.get(0, 0) / xv.len().max(1) as f32;
                    ws.give(g);
                    let mut dx = ws.take(xv.rows(), xv.cols());
                    for d in dx.as_mut_slice() {
                        *d = scale;
                    }
                    accumulate(grad_slots, ws, *x, dx);
                }
                Op::Sum(x) => {
                    let xv = val_of(*x);
                    let g00 = g.get(0, 0);
                    ws.give(g);
                    let mut dx = ws.take(xv.rows(), xv.cols());
                    for d in dx.as_mut_slice() {
                        *d = g00;
                    }
                    accumulate(grad_slots, ws, *x, dx);
                }
                Op::MseLoss { pred, target } => {
                    let p = val_of(*pred);
                    let scale = 2.0 * g.get(0, 0) / p.len().max(1) as f32;
                    ws.give(g);
                    let mut dp = ws.take(p.rows(), p.cols());
                    for ((o, &pv), &tv) in
                        dp.as_mut_slice().iter_mut().zip(p.as_slice()).zip(target.as_slice())
                    {
                        *o = (pv - tv) * scale;
                    }
                    accumulate(grad_slots, ws, *pred, dp);
                }
                Op::BceWithLogits { logits, targets, probs } => {
                    // dL/dz = (σ(z) - y) / N, with σ(z) read from the
                    // forward-cached probs — no exp in the backward sweep.
                    let z = val_of(*logits);
                    let scale = g.get(0, 0) / z.len().max(1) as f32;
                    ws.give(g);
                    let mut dz = ws.take(z.rows(), z.cols());
                    for ((d, &p), &y) in
                        dz.as_mut_slice().iter_mut().zip(probs.as_slice()).zip(targets.as_slice())
                    {
                        *d = scale * (p - y);
                    }
                    accumulate(grad_slots, ws, *logits, dz);
                }
                Op::Detach(_) => ws.give(g),
            }
        }
        store.coalesce_sparse_grads();
        if let Some(t0) = t0 {
            atnn_obs::emit(&atnn_obs::Event::Backward {
                ns: t0.elapsed().as_nanos() as u64,
                nodes: loss.0 as u64 + 1,
            });
        }
    }
}

fn accumulate(grads: &mut [Option<Matrix>], ws: &mut Workspace, var: Var, delta: Matrix) {
    match &mut grads[var.0] {
        Some(existing) => {
            existing.add_assign_scaled(&delta, 1.0).expect("gradient accumulation shape mismatch");
            ws.give(delta);
        }
        slot @ None => *slot = Some(delta),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use atnn_tensor::{Init, Rng64};

    fn store_with(shapes: &[(usize, usize)], seed: u64) -> (ParamStore, Vec<ParamId>) {
        let mut rng = Rng64::seed_from_u64(seed);
        let mut store = ParamStore::new();
        let ids = shapes
            .iter()
            .enumerate()
            .map(|(i, &(r, c))| {
                store.add(format!("p{i}"), Init::Normal(0.5).sample(r, c, &mut rng))
            })
            .collect();
        (store, ids)
    }

    #[test]
    fn forward_values_match_manual() {
        let mut g = Graph::new();
        let x = g.input(Matrix::from_rows(&[&[1.0, -2.0]]).unwrap());
        let r = g.relu(x);
        assert_eq!(g.value(r).as_slice(), &[1.0, 0.0]);
        let s = g.sigmoid(x);
        assert!((g.value(s).get(0, 0) - sigmoid(1.0)).abs() < 1e-6);
        let m = g.mean(x);
        assert_eq!(g.value(m).get(0, 0), -0.5);
    }

    #[test]
    fn linear_regression_converges() {
        // y = 2x1 - 3x2 + 1 learned by gradient descent: end-to-end sanity of
        // matmul/add_row_broadcast/mse backward.
        let mut rng = Rng64::seed_from_u64(1);
        let (mut store, ids) = store_with(&[(2, 1), (1, 1)], 2);
        let (w, b) = (ids[0], ids[1]);
        let xs = Init::Normal(1.0).sample(64, 2, &mut rng);
        let ys = Matrix::from_fn(64, 1, |i, _| 2.0 * xs.get(i, 0) - 3.0 * xs.get(i, 1) + 1.0);
        let mut last = f32::INFINITY;
        for _ in 0..300 {
            store.zero_all_grads();
            let mut g = Graph::new();
            let x = g.input(xs.clone());
            let wv = g.param(&store, w);
            let bv = g.param(&store, b);
            let xw = g.matmul(x, wv);
            let pred = g.add_row_broadcast(xw, bv);
            let loss = g.mse_loss(pred, &ys);
            last = g.value(loss).get(0, 0);
            g.backward(loss, &mut store);
            for &id in &[w, b] {
                let grad = store.grad(id).clone();
                store.value_mut(id).add_assign_scaled(&grad, -0.1).unwrap();
            }
        }
        assert!(last < 1e-4, "final loss {last}");
        assert!((store.value(w).get(0, 0) - 2.0).abs() < 0.01);
        assert!((store.value(w).get(1, 0) + 3.0).abs() < 0.01);
        assert!((store.value(b).get(0, 0) - 1.0).abs() < 0.01);
    }

    #[test]
    fn gather_routes_sparse_gradients() {
        let mut store = ParamStore::new();
        let table = store.add("emb", Matrix::from_fn(4, 2, |i, j| (i * 2 + j) as f32));
        let mut g = Graph::new();
        let e = g.gather(&store, table, &[1, 3, 1]);
        assert_eq!(g.value(e).row(0), &[2.0, 3.0]);
        assert_eq!(g.value(e).row(1), &[6.0, 7.0]);
        let s = g.sum(e);
        g.backward(s, &mut store);
        // Row 1 referenced twice -> grad 2; row 3 once -> 1; rows 0,2 -> 0.
        assert_eq!(store.grad(table).row(0), &[0.0, 0.0]);
        assert_eq!(store.grad(table).row(1), &[2.0, 2.0]);
        assert_eq!(store.grad(table).row(2), &[0.0, 0.0]);
        assert_eq!(store.grad(table).row(3), &[1.0, 1.0]);
    }

    #[test]
    fn detach_blocks_gradients() {
        let (mut store, ids) = store_with(&[(1, 3)], 3);
        let p = ids[0];
        let mut g = Graph::new();
        let v = g.param(&store, p);
        let d = g.detach(v);
        let s = g.sum(d);
        g.backward(s, &mut store);
        assert_eq!(store.grad(p).as_slice(), &[0.0, 0.0, 0.0]);
        // And without detach the same graph does produce gradients.
        let mut g = Graph::new();
        let v = g.param(&store, p);
        let s = g.sum(v);
        g.backward(s, &mut store);
        assert_eq!(store.grad(p).as_slice(), &[1.0, 1.0, 1.0]);
    }

    #[test]
    fn grads_accumulate_across_backward_calls() {
        let (mut store, ids) = store_with(&[(1, 1)], 4);
        let p = ids[0];
        for _ in 0..3 {
            let mut g = Graph::new();
            let v = g.param(&store, p);
            let s = g.sum(v);
            g.backward(s, &mut store);
        }
        assert_eq!(store.grad(p).get(0, 0), 3.0);
    }

    #[test]
    fn diamond_graph_accumulates_both_paths() {
        // f(x) = sum(x*x + x) -> df/dx = 2x + 1
        let mut store = ParamStore::new();
        let p = store.add("x", Matrix::row_vector(&[3.0]));
        let mut g = Graph::new();
        let x = g.param(&store, p);
        let sq = g.mul(x, x);
        let both = g.add(sq, x);
        let s = g.sum(both);
        g.backward(s, &mut store);
        assert_eq!(store.grad(p).get(0, 0), 7.0);
    }

    #[test]
    fn bce_matches_manual_formula() {
        let mut g = Graph::new();
        let logits = g.input(Matrix::row_vector(&[0.3, -1.2, 2.0]));
        let targets = Matrix::row_vector(&[1.0, 0.0, 1.0]);
        let loss = g.bce_with_logits_loss(logits, &targets);
        let manual: f32 = [(0.3f32, 1.0f32), (-1.2, 0.0), (2.0, 1.0)]
            .iter()
            .map(|&(z, y)| {
                let p = sigmoid(z);
                -(y * p.ln() + (1.0 - y) * (1.0 - p).ln())
            })
            .sum::<f32>()
            / 3.0;
        assert!((g.value(loss).get(0, 0) - manual).abs() < 1e-5);
    }

    #[test]
    fn bce_is_stable_for_extreme_logits() {
        let mut g = Graph::new();
        let logits = g.input(Matrix::row_vector(&[80.0, -80.0]));
        let targets = Matrix::row_vector(&[1.0, 0.0]);
        let loss = g.bce_with_logits_loss(logits, &targets);
        let v = g.value(loss).get(0, 0);
        assert!(v.is_finite() && (0.0..1e-3).contains(&v), "loss={v}");
    }

    #[test]
    fn clear_reuses_allocation() {
        let mut g = Graph::new();
        g.input(Matrix::zeros(1, 1));
        assert_eq!(g.len(), 1);
        g.clear();
        assert!(g.is_empty());
    }

    #[test]
    #[should_panic(expected = "loss must be a scalar")]
    fn backward_rejects_non_scalar_loss() {
        let mut store = ParamStore::new();
        let mut g = Graph::new();
        let x = g.input(Matrix::zeros(2, 2));
        g.backward(x, &mut store);
    }

    #[test]
    fn rowwise_cosine_forward_values() {
        let mut g = Graph::new();
        let a = g.input(Matrix::from_rows(&[&[1.0, 0.0], &[1.0, 1.0], &[0.0, 0.0]]).unwrap());
        let b = g.input(Matrix::from_rows(&[&[2.0, 0.0], &[-1.0, -1.0], &[1.0, 1.0]]).unwrap());
        let c = g.rowwise_cosine(a, b);
        let v = g.value(c);
        assert!((v.get(0, 0) - 1.0).abs() < 1e-6);
        assert!((v.get(1, 0) + 1.0).abs() < 1e-6);
        assert_eq!(v.get(2, 0), 0.0);
    }
}
