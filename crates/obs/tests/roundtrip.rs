//! JSONL sink round-trip: emit a stream of every event kind through a
//! `JsonlSink`, read the file back line by line, and require *exact*
//! event equality — this is what makes a recorded stream replayable by
//! the bench harness.

use std::sync::{Arc, Mutex};

use atnn_obs::{emit, install_scoped, Event, JsonlSink};

/// A `Write` impl backed by a shared buffer so the test can read what the
/// sink wrote without touching the filesystem.
#[derive(Clone, Default)]
struct SharedBuf(Arc<Mutex<Vec<u8>>>);

impl std::io::Write for SharedBuf {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.0.lock().unwrap().extend_from_slice(buf);
        Ok(buf.len())
    }

    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

fn every_event_kind() -> Vec<Event> {
    vec![
        Event::EpochEnd {
            model: "ctr".into(),
            epoch: 3,
            loss_i: 0.6931999,
            loss_g: 1.25e-7,
            loss_s: -0.125,
            val_auc: Some(0.7431234567890123),
        },
        Event::EpochEnd {
            model: "multitask".into(),
            epoch: 0,
            loss_i: 0.5,
            loss_g: 0.25,
            loss_s: 0.125,
            val_auc: None,
        },
        Event::StepTiming { section: "ctr.train_step".into(), ns: 1_234_567, rows: 256 },
        Event::Backward { ns: 987_654_321, nodes: 151 },
        Event::GradNorm { norm: 17.25, clipped: true },
        Event::EarlyStop { model: "ctr".into(), stopped_epoch: 7, best_epoch: 4 },
        Event::Swap { version: u64::MAX },
        Event::Shed { endpoint: "score_new_arrival".into() },
        Event::Span { label: "weird \"label\"\\with\nescapes".into(), ns: 0 },
        Event::KernelDispatch {
            tiled: 4821,
            small: 977,
            edge_tiles: 64,
            parallel: 0,
            backend: "fastmath".into(),
        },
    ]
}

#[test]
fn jsonl_stream_roundtrips_to_exactly_equal_events() {
    let buf = SharedBuf::default();
    let events = every_event_kind();
    {
        let _guard = install_scoped(Arc::new(JsonlSink::from_writer(buf.clone())));
        for e in &events {
            emit(e);
        }
        atnn_obs::flush();
    }
    let bytes = buf.0.lock().unwrap().clone();
    let text = String::from_utf8(bytes).expect("sink output is UTF-8");
    let parsed: Vec<Event> = text
        .lines()
        .map(|line| Event::from_json(line).unwrap_or_else(|e| panic!("line {line:?}: {e}")))
        .collect();
    assert_eq!(parsed, events, "JSONL round-trip must reproduce the stream exactly");
}

#[test]
fn float_payloads_roundtrip_bit_exactly() {
    // Shortest round-trip Display + parse-at-the-same-width must be the
    // identity on awkward values, not just pretty ones.
    for loss in [f32::MIN_POSITIVE, 1.0 + f32::EPSILON, 3.4e38, 1e-40 /* subnormal */] {
        for auc in [0.5000000000000001_f64, f64::MIN_POSITIVE, 0.9999999999999999] {
            let e = Event::EpochEnd {
                model: "ctr".into(),
                epoch: 1,
                loss_i: loss,
                loss_g: -loss,
                loss_s: 0.0,
                val_auc: Some(auc),
            };
            let back = Event::from_json(&e.to_json()).unwrap();
            match back {
                Event::EpochEnd { loss_i, loss_g, val_auc, .. } => {
                    assert_eq!(loss_i.to_bits(), loss.to_bits());
                    assert_eq!(loss_g.to_bits(), (-loss).to_bits());
                    assert_eq!(val_auc.unwrap().to_bits(), auc.to_bits());
                }
                other => panic!("wrong event: {other:?}"),
            }
        }
    }
}

#[test]
fn appended_streams_concatenate() {
    // JSONL is append-only: two sessions writing to the same file must
    // yield one parseable stream.
    let buf = SharedBuf::default();
    for version in [1u64, 2] {
        let _guard = install_scoped(Arc::new(JsonlSink::from_writer(buf.clone())));
        emit(&Event::Swap { version });
        atnn_obs::flush();
    }
    let bytes = buf.0.lock().unwrap().clone();
    let text = String::from_utf8(bytes).unwrap();
    let versions: Vec<u64> = text
        .lines()
        .map(|l| match Event::from_json(l).unwrap() {
            Event::Swap { version } => version,
            other => panic!("wrong event: {other:?}"),
        })
        .collect();
    assert_eq!(versions, vec![1, 2]);
}
