//! Process-level resource introspection (Linux `/proc`).
//!
//! Benches record peak RSS next to their latency/recall numbers so
//! memory claims are machine-checked rather than eyeballed. The kernel
//! tracks the high-water mark for us: `VmHWM` in `/proc/self/status` is
//! the peak resident set size since process start (monotone — a sweep
//! that measures after each stage sees the running maximum).

use std::fs;

/// Peak resident set size (`VmHWM`) of this process in bytes.
///
/// Returns `None` off-Linux or if `/proc/self/status` is unreadable or
/// has no `VmHWM` line. The kernel reports the value in kB.
pub fn peak_rss_bytes() -> Option<u64> {
    let status = fs::read_to_string("/proc/self/status").ok()?;
    parse_vm_hwm_kb(&status).map(|kb| kb * 1024)
}

/// Current resident set size (`VmRSS`) of this process in bytes, if
/// available.
pub fn current_rss_bytes() -> Option<u64> {
    let status = fs::read_to_string("/proc/self/status").ok()?;
    parse_field_kb(&status, "VmRSS:").map(|kb| kb * 1024)
}

fn parse_vm_hwm_kb(status: &str) -> Option<u64> {
    parse_field_kb(status, "VmHWM:")
}

fn parse_field_kb(status: &str, field: &str) -> Option<u64> {
    status.lines().find(|l| l.starts_with(field))?.split_ascii_whitespace().nth(1)?.parse().ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_vm_hwm_line() {
        let status = "Name:\tatnn\nVmPeak:\t  123 kB\nVmHWM:\t    4567 kB\nVmRSS:\t 4096 kB\n";
        assert_eq!(parse_vm_hwm_kb(status), Some(4567));
        assert_eq!(parse_field_kb(status, "VmRSS:"), Some(4096));
        assert_eq!(parse_field_kb("no such field", "VmHWM:"), None);
    }

    #[test]
    fn live_reading_is_positive_on_linux() {
        if let Some(bytes) = peak_rss_bytes() {
            assert!(bytes > 0);
            // Peak can never be below current residency.
            if let Some(cur) = current_rss_bytes() {
                assert!(bytes >= cur);
            }
        }
    }
}
