//! The typed event stream: one enum, a stable flat-JSON wire form, and an
//! exact parser for replaying recorded streams.
//!
//! Every event serializes to a single-line flat JSON object whose first
//! key is `"event"` (the kind tag). Floats are written with Rust's
//! shortest round-trip `Display` and parsed back at the same width, so
//! `Event::from_json(&e.to_json()) == Ok(e)` holds exactly for finite
//! values; non-finite floats are encoded as the strings `"NaN"`, `"inf"`
//! and `"-inf"` (JSON numbers cannot represent them).

use std::borrow::Cow;

use crate::json::{parse_flat_object, write_string, JsonError, Scalar};

/// String payload of an event: `'static` at emit sites (no allocation on
/// the hot path), owned after parsing a recorded stream. `Cow`'s equality
/// compares contents, so round-trips still compare equal.
pub type Str = Cow<'static, str>;

/// A structured telemetry event.
///
/// Producers throughout the workspace emit these through
/// [`crate::emit`]; installed [`crate::Sink`]s receive them. The set is
/// expected to grow — consumers should ignore kinds they do not know.
#[derive(Debug, Clone, PartialEq)]
pub enum Event {
    /// One training epoch finished (`CtrTrainer`, `MultiTaskAtnn`).
    EpochEnd {
        /// Which trainer produced it (`"ctr"`, `"multitask"`).
        model: Str,
        /// Zero-based epoch index.
        epoch: u64,
        /// Mean per-batch item-tower (or D-step) loss.
        loss_i: f32,
        /// Mean per-batch generator loss.
        loss_g: f32,
        /// Mean per-batch similarity loss.
        loss_s: f32,
        /// Validation AUC, when a validation split was supplied.
        val_auc: Option<f64>,
    },
    /// One timed section of a training step.
    StepTiming {
        /// Section label, e.g. `"ctr.train_step"`.
        section: Str,
        /// Wall time of the section in nanoseconds.
        ns: u64,
        /// Rows processed in the section (0 when not meaningful).
        rows: u64,
    },
    /// One reverse pass through the autograd tape.
    Backward {
        /// Wall time of the backward pass in nanoseconds.
        ns: u64,
        /// Number of tape nodes visited.
        nodes: u64,
    },
    /// A global gradient-norm clip decision (`atnn-nn` optimizers).
    GradNorm {
        /// Pre-clip global L2 norm.
        norm: f32,
        /// Whether the gradients were rescaled.
        clipped: bool,
    },
    /// Early stopping fired: training ended before the epoch budget.
    EarlyStop {
        /// Which trainer stopped.
        model: Str,
        /// Epoch after which training stopped (zero-based).
        stopped_epoch: u64,
        /// Epoch whose weights were kept.
        best_epoch: u64,
    },
    /// A serving replica published a new model snapshot.
    Swap {
        /// The new model version.
        version: u64,
    },
    /// The serving batcher shed a request under overload.
    Shed {
        /// Endpoint that was shed, e.g. `"score"`.
        endpoint: Str,
    },
    /// A scoped timer (see [`crate::span()`]) finished.
    Span {
        /// The span's label.
        label: Str,
        /// Wall time between creation and drop in nanoseconds.
        ns: u64,
    },
    /// Cumulative dense-kernel dispatch counts (`atnn-tensor` gemm),
    /// snapshotted once per epoch so kernel selection is visible in the
    /// stream.
    KernelDispatch {
        /// Gemm calls that took the register-tiled path.
        tiled: u64,
        /// Gemm calls that took the scalar small/skinny path.
        small: u64,
        /// Zero-padded rim micro-tiles executed by the tiled path.
        edge_tiles: u64,
        /// Matmul entry points forked across the worker pool.
        parallel: u64,
        /// Active compute backend at snapshot time (`scalar` / `avx2` /
        /// `fastmath`) so traces attribute kernel counts per backend.
        backend: Str,
    },
}

/// Why a line failed to parse back into an [`Event`].
#[derive(Debug, Clone, PartialEq)]
pub enum EventParseError {
    /// The line is not a flat JSON object.
    Json(JsonError),
    /// The object is missing a required field.
    MissingField(&'static str),
    /// A field had the wrong type or an unparsable value.
    BadField(&'static str),
    /// The `"event"` tag named a kind this version does not know.
    UnknownEvent(String),
}

impl std::fmt::Display for EventParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EventParseError::Json(e) => write!(f, "{e}"),
            EventParseError::MissingField(k) => write!(f, "missing event field {k:?}"),
            EventParseError::BadField(k) => write!(f, "malformed event field {k:?}"),
            EventParseError::UnknownEvent(kind) => write!(f, "unknown event kind {kind:?}"),
        }
    }
}

impl std::error::Error for EventParseError {}

impl From<JsonError> for EventParseError {
    fn from(e: JsonError) -> Self {
        EventParseError::Json(e)
    }
}

// --- writing -------------------------------------------------------------

fn push_key(out: &mut String, key: &str) {
    out.push(',');
    write_string(out, key);
    out.push(':');
}

fn push_str(out: &mut String, key: &str, value: &str) {
    push_key(out, key);
    write_string(out, value);
}

fn push_u64(out: &mut String, key: &str, value: u64) {
    use std::fmt::Write as _;
    push_key(out, key);
    let _ = write!(out, "{value}");
}

fn push_bool(out: &mut String, key: &str, value: bool) {
    push_key(out, key);
    out.push_str(if value { "true" } else { "false" });
}

/// Non-finite floats have no JSON-number form; both widths share these
/// string spellings.
fn push_f64(out: &mut String, key: &str, value: f64) {
    use std::fmt::Write as _;
    push_key(out, key);
    if value.is_finite() {
        let _ = write!(out, "{value}");
    } else if value.is_nan() {
        out.push_str("\"NaN\"");
    } else if value > 0.0 {
        out.push_str("\"inf\"");
    } else {
        out.push_str("\"-inf\"");
    }
}

fn push_f32(out: &mut String, key: &str, value: f32) {
    use std::fmt::Write as _;
    push_key(out, key);
    if value.is_finite() {
        let _ = write!(out, "{value}");
    } else if value.is_nan() {
        out.push_str("\"NaN\"");
    } else if value > 0.0 {
        out.push_str("\"inf\"");
    } else {
        out.push_str("\"-inf\"");
    }
}

// --- reading -------------------------------------------------------------

struct Fields(Vec<(String, Scalar)>);

impl Fields {
    fn get(&self, key: &'static str) -> Result<&Scalar, EventParseError> {
        self.0
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v)
            .ok_or(EventParseError::MissingField(key))
    }

    fn str_field(&self, key: &'static str) -> Result<Str, EventParseError> {
        match self.get(key)? {
            Scalar::String(s) => Ok(Cow::Owned(s.clone())),
            _ => Err(EventParseError::BadField(key)),
        }
    }

    fn u64_field(&self, key: &'static str) -> Result<u64, EventParseError> {
        match self.get(key)? {
            Scalar::Number(raw) => raw.parse().map_err(|_| EventParseError::BadField(key)),
            _ => Err(EventParseError::BadField(key)),
        }
    }

    fn bool_field(&self, key: &'static str) -> Result<bool, EventParseError> {
        match self.get(key)? {
            Scalar::Bool(b) => Ok(*b),
            _ => Err(EventParseError::BadField(key)),
        }
    }

    fn f32_field(&self, key: &'static str) -> Result<f32, EventParseError> {
        match self.get(key)? {
            Scalar::Number(raw) => raw.parse().map_err(|_| EventParseError::BadField(key)),
            Scalar::String(s) => non_finite(s).map(|v| v as f32),
            _ => Err(EventParseError::BadField(key)),
        }
        .map_err(|_: EventParseError| EventParseError::BadField(key))
    }

    fn opt_f64_field(&self, key: &'static str) -> Result<Option<f64>, EventParseError> {
        match self.get(key)? {
            Scalar::Null => Ok(None),
            Scalar::Number(raw) => {
                raw.parse().map(Some).map_err(|_| EventParseError::BadField(key))
            }
            Scalar::String(s) => non_finite(s).map(Some),
            _ => Err(EventParseError::BadField(key)),
        }
        .map_err(|_: EventParseError| EventParseError::BadField(key))
    }
}

fn non_finite(s: &str) -> Result<f64, EventParseError> {
    match s {
        "NaN" => Ok(f64::NAN),
        "inf" => Ok(f64::INFINITY),
        "-inf" => Ok(f64::NEG_INFINITY),
        _ => Err(EventParseError::BadField("")),
    }
}

impl Event {
    /// The stable snake_case kind tag this event serializes under.
    pub fn kind(&self) -> &'static str {
        match self {
            Event::EpochEnd { .. } => "epoch_end",
            Event::StepTiming { .. } => "step_timing",
            Event::Backward { .. } => "backward",
            Event::GradNorm { .. } => "grad_norm",
            Event::EarlyStop { .. } => "early_stop",
            Event::Swap { .. } => "swap",
            Event::Shed { .. } => "shed",
            Event::Span { .. } => "span",
            Event::KernelDispatch { .. } => "kernel_dispatch",
        }
    }

    /// Serializes to one flat single-line JSON object (no trailing
    /// newline).
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(96);
        out.push('{');
        write_string(&mut out, "event");
        out.push(':');
        write_string(&mut out, self.kind());
        match self {
            Event::EpochEnd { model, epoch, loss_i, loss_g, loss_s, val_auc } => {
                push_str(&mut out, "model", model);
                push_u64(&mut out, "epoch", *epoch);
                push_f32(&mut out, "loss_i", *loss_i);
                push_f32(&mut out, "loss_g", *loss_g);
                push_f32(&mut out, "loss_s", *loss_s);
                match val_auc {
                    Some(auc) => push_f64(&mut out, "val_auc", *auc),
                    None => {
                        push_key(&mut out, "val_auc");
                        out.push_str("null");
                    }
                }
            }
            Event::StepTiming { section, ns, rows } => {
                push_str(&mut out, "section", section);
                push_u64(&mut out, "ns", *ns);
                push_u64(&mut out, "rows", *rows);
            }
            Event::Backward { ns, nodes } => {
                push_u64(&mut out, "ns", *ns);
                push_u64(&mut out, "nodes", *nodes);
            }
            Event::GradNorm { norm, clipped } => {
                push_f32(&mut out, "norm", *norm);
                push_bool(&mut out, "clipped", *clipped);
            }
            Event::EarlyStop { model, stopped_epoch, best_epoch } => {
                push_str(&mut out, "model", model);
                push_u64(&mut out, "stopped_epoch", *stopped_epoch);
                push_u64(&mut out, "best_epoch", *best_epoch);
            }
            Event::Swap { version } => push_u64(&mut out, "version", *version),
            Event::Shed { endpoint } => push_str(&mut out, "endpoint", endpoint),
            Event::Span { label, ns } => {
                push_str(&mut out, "label", label);
                push_u64(&mut out, "ns", *ns);
            }
            Event::KernelDispatch { tiled, small, edge_tiles, parallel, backend } => {
                push_u64(&mut out, "tiled", *tiled);
                push_u64(&mut out, "small", *small);
                push_u64(&mut out, "edge_tiles", *edge_tiles);
                push_u64(&mut out, "parallel", *parallel);
                push_str(&mut out, "backend", backend);
            }
        }
        out.push('}');
        out
    }

    /// Parses one line previously produced by [`Event::to_json`].
    ///
    /// Exact inverse for finite floats: the parsed event compares equal to
    /// the one that was serialized. Unknown `"event"` tags are reported as
    /// [`EventParseError::UnknownEvent`] so readers can skip kinds added
    /// by newer writers.
    pub fn from_json(line: &str) -> Result<Event, EventParseError> {
        let fields = Fields(parse_flat_object(line)?);
        let kind = match fields.get("event")? {
            Scalar::String(s) => s.clone(),
            _ => return Err(EventParseError::BadField("event")),
        };
        match kind.as_str() {
            "epoch_end" => Ok(Event::EpochEnd {
                model: fields.str_field("model")?,
                epoch: fields.u64_field("epoch")?,
                loss_i: fields.f32_field("loss_i")?,
                loss_g: fields.f32_field("loss_g")?,
                loss_s: fields.f32_field("loss_s")?,
                val_auc: fields.opt_f64_field("val_auc")?,
            }),
            "step_timing" => Ok(Event::StepTiming {
                section: fields.str_field("section")?,
                ns: fields.u64_field("ns")?,
                rows: fields.u64_field("rows")?,
            }),
            "backward" => Ok(Event::Backward {
                ns: fields.u64_field("ns")?,
                nodes: fields.u64_field("nodes")?,
            }),
            "grad_norm" => Ok(Event::GradNorm {
                norm: fields.f32_field("norm")?,
                clipped: fields.bool_field("clipped")?,
            }),
            "early_stop" => Ok(Event::EarlyStop {
                model: fields.str_field("model")?,
                stopped_epoch: fields.u64_field("stopped_epoch")?,
                best_epoch: fields.u64_field("best_epoch")?,
            }),
            "swap" => Ok(Event::Swap { version: fields.u64_field("version")? }),
            "shed" => Ok(Event::Shed { endpoint: fields.str_field("endpoint")? }),
            "span" => {
                Ok(Event::Span { label: fields.str_field("label")?, ns: fields.u64_field("ns")? })
            }
            "kernel_dispatch" => Ok(Event::KernelDispatch {
                tiled: fields.u64_field("tiled")?,
                small: fields.u64_field("small")?,
                edge_tiles: fields.u64_field("edge_tiles")?,
                parallel: fields.u64_field("parallel")?,
                backend: fields.str_field("backend")?,
            }),
            other => Err(EventParseError::UnknownEvent(other.to_string())),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_tags_are_stable() {
        assert_eq!(Event::Swap { version: 1 }.kind(), "swap");
        assert_eq!(Event::Swap { version: 7 }.to_json(), r#"{"event":"swap","version":7}"#);
    }

    #[test]
    fn non_finite_floats_survive_the_wire() {
        let e = Event::GradNorm { norm: f32::INFINITY, clipped: true };
        let back = Event::from_json(&e.to_json()).unwrap();
        match back {
            Event::GradNorm { norm, clipped: true } => assert!(norm.is_infinite() && norm > 0.0),
            other => panic!("wrong event: {other:?}"),
        }
        let e = Event::EpochEnd {
            model: "ctr".into(),
            epoch: 0,
            loss_i: f32::NAN,
            loss_g: f32::NEG_INFINITY,
            loss_s: 0.5,
            val_auc: Some(f64::NAN),
        };
        match Event::from_json(&e.to_json()).unwrap() {
            Event::EpochEnd { loss_i, loss_g, loss_s, val_auc, .. } => {
                assert!(loss_i.is_nan());
                assert!(loss_g.is_infinite() && loss_g < 0.0);
                assert_eq!(loss_s, 0.5);
                assert!(val_auc.unwrap().is_nan());
            }
            other => panic!("wrong event: {other:?}"),
        }
    }

    #[test]
    fn kernel_dispatch_roundtrips() {
        let e = Event::KernelDispatch {
            tiled: 12,
            small: 34,
            edge_tiles: 5,
            parallel: 6,
            backend: "avx2".into(),
        };
        assert_eq!(e.kind(), "kernel_dispatch");
        assert_eq!(
            e.to_json(),
            r#"{"event":"kernel_dispatch","tiled":12,"small":34,"edge_tiles":5,"parallel":6,"backend":"avx2"}"#
        );
        assert_eq!(Event::from_json(&e.to_json()).unwrap(), e);
    }

    #[test]
    fn unknown_kinds_are_reported_not_fatal() {
        let err = Event::from_json(r#"{"event":"drift_alarm","score":0.9}"#).unwrap_err();
        assert_eq!(err, EventParseError::UnknownEvent("drift_alarm".to_string()));
    }
}
