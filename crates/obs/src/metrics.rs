//! Always-on scalar instruments: relaxed-atomic counters, gauges, and the
//! geometric latency histogram.
//!
//! These are the "cheap half" of the observability layer: recording into
//! any of them is a handful of relaxed atomic operations with no lock and
//! no allocation, so call sites leave them unconditional. The event stream
//! (see [`crate::Event`]) is the gated half.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// A monotone event counter (relaxed atomic `u64`).
///
/// `const`-constructible so it can live in a `static` next to the code it
/// instruments:
///
/// ```
/// use atnn_obs::Counter;
/// static DISPATCHES: Counter = Counter::new();
/// DISPATCHES.incr();
/// assert!(DISPATCHES.get() >= 1);
/// ```
#[derive(Debug)]
pub struct Counter(AtomicU64);

impl Counter {
    /// A zeroed counter.
    pub const fn new() -> Self {
        Counter(AtomicU64::new(0))
    }

    /// Adds `n` to the counter.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Adds one to the counter.
    #[inline]
    pub fn incr(&self) {
        self.add(1);
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }

    /// Resets to zero, returning the previous value.
    pub fn take(&self) -> u64 {
        self.0.swap(0, Ordering::Relaxed)
    }
}

impl Default for Counter {
    fn default() -> Self {
        Counter::new()
    }
}

/// A last-value-wins `f64` gauge (stored as raw bits in an atomic `u64`).
#[derive(Debug)]
pub struct Gauge(AtomicU64);

impl Gauge {
    /// A gauge reading `0.0`.
    pub const fn new() -> Self {
        // 0u64 is the bit pattern of +0.0f64.
        Gauge(AtomicU64::new(0))
    }

    /// Stores a new reading.
    #[inline]
    pub fn set(&self, value: f64) {
        self.0.store(value.to_bits(), Ordering::Relaxed);
    }

    /// Last stored reading.
    #[inline]
    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }
}

impl Default for Gauge {
    fn default() -> Self {
        Gauge::new()
    }
}

/// Number of finite histogram buckets. With a 1 µs base and ×1.25 spacing
/// the last finite bound is ≈ 88 s; anything slower lands in the overflow
/// bucket.
pub const BUCKETS: usize = 83;
/// Lowest bucket upper bound, in nanoseconds.
pub const BASE_NS: u64 = 1_000;

/// Bucket bound growth factor (5/4, computed in integers so bounds are
/// reproducible across platforms).
#[inline]
fn next_bound(b: u64) -> u64 {
    b + b / 4
}

/// A fixed-bucket latency histogram with geometric (×1.25) bounds.
///
/// Lifted from `atnn-serve`'s original telemetry module and generalized;
/// the bucket geometry (83 buckets, 1 µs base, integer 5/4 growth) is
/// identical, so quantiles computed here are bit-identical to what the
/// serve `Stats` endpoint always reported.
///
/// Recording is one relaxed `fetch_add`; any quantile is derivable from
/// the bucket counts. A reported quantile is the matched bucket's *upper
/// bound*, so it is always ≥ the true quantile and within one bucket
/// ratio (×1.25) of it.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; BUCKETS],
    /// Samples above the last finite bound.
    overflow: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram { buckets: [(); BUCKETS].map(|_| AtomicU64::new(0)), overflow: AtomicU64::new(0) }
    }
}

impl Histogram {
    /// Fresh, zeroed histogram.
    pub fn new() -> Self {
        Histogram::default()
    }

    /// Records one latency sample.
    #[inline]
    pub fn record(&self, latency: Duration) {
        self.record_ns(latency.as_nanos().min(u128::from(u64::MAX)) as u64);
    }

    /// Records one sample given directly in nanoseconds.
    pub fn record_ns(&self, ns: u64) {
        let mut bound = BASE_NS;
        for bucket in &self.buckets {
            if ns <= bound {
                bucket.fetch_add(1, Ordering::Relaxed);
                return;
            }
            bound = next_bound(bound);
        }
        self.overflow.fetch_add(1, Ordering::Relaxed);
    }

    /// Total samples recorded.
    pub fn count(&self) -> u64 {
        self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).sum::<u64>()
            + self.overflow.load(Ordering::Relaxed)
    }

    /// Samples that exceeded the last finite bucket bound.
    pub fn overflow(&self) -> u64 {
        self.overflow.load(Ordering::Relaxed)
    }

    /// The `q`-quantile (0 < q ≤ 1) as the upper bound of the bucket the
    /// quantile sample falls in, in nanoseconds. Zero when empty.
    pub fn quantile_ns(&self, q: f64) -> u64 {
        let total = self.count();
        if total == 0 {
            return 0;
        }
        let rank = ((q * total as f64).ceil() as u64).clamp(1, total);
        let mut seen = 0u64;
        let mut bound = BASE_NS;
        for bucket in &self.buckets {
            seen += bucket.load(Ordering::Relaxed);
            if seen >= rank {
                return bound;
            }
            bound = next_bound(bound);
        }
        bound // overflow bucket: report the last finite bound
    }

    /// Non-empty buckets as `(upper_bound_ns, count)` pairs, in bound
    /// order; the overflow bucket (if non-empty) is reported with
    /// `u64::MAX` as its bound. Useful for dumping a full distribution.
    pub fn nonzero_buckets(&self) -> Vec<(u64, u64)> {
        let mut out = Vec::new();
        let mut bound = BASE_NS;
        for bucket in &self.buckets {
            let n = bucket.load(Ordering::Relaxed);
            if n > 0 {
                out.push((bound, n));
            }
            bound = next_bound(bound);
        }
        let over = self.overflow.load(Ordering::Relaxed);
        if over > 0 {
            out.push((u64::MAX, over));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_roundtrip() {
        let c = Counter::new();
        c.incr();
        c.add(4);
        assert_eq!(c.get(), 5);
        assert_eq!(c.take(), 5);
        assert_eq!(c.get(), 0);

        let g = Gauge::new();
        assert_eq!(g.get(), 0.0);
        g.set(-3.25);
        assert_eq!(g.get(), -3.25);
    }

    // The two histogram tests below are carried over verbatim from the
    // original `atnn-serve` telemetry module: they pin the exact bucket
    // geometry that serve's Stats replies depend on.

    #[test]
    fn histogram_quantiles_bracket_the_samples() {
        let h = Histogram::default();
        // 100 samples: 1..=100 µs.
        for us in 1..=100u64 {
            h.record(Duration::from_micros(us));
        }
        assert_eq!(h.count(), 100);
        let p50 = h.quantile_ns(0.50);
        let p99 = h.quantile_ns(0.99);
        // Bucket bounds are ×1.25 apart: the reported bound is ≥ the true
        // quantile and < 1.25× the next sample above it.
        assert!((50_000..100_000).contains(&p50), "p50={p50}");
        assert!((99_000..198_000).contains(&p99), "p99={p99}");
        assert!(h.quantile_ns(1.0) >= 100_000);
    }

    #[test]
    fn histogram_handles_extremes() {
        let h = Histogram::default();
        assert_eq!(h.quantile_ns(0.5), 0, "empty histogram");
        h.record(Duration::from_nanos(1));
        h.record(Duration::from_secs(10_000)); // overflow bucket
        assert_eq!(h.count(), 2);
        assert_eq!(h.overflow(), 1);
        assert_eq!(h.quantile_ns(0.25), BASE_NS);
        assert!(h.quantile_ns(1.0) >= 10_000_000_000, "last finite bound covers ≥ 10 s");
    }

    #[test]
    fn record_ns_matches_record() {
        let a = Histogram::new();
        let b = Histogram::new();
        for ns in [0, 1, 999, 1_000, 1_001, 5_000_000, u64::MAX] {
            a.record_ns(ns);
            b.record(Duration::from_nanos(ns));
        }
        assert_eq!(a.nonzero_buckets(), b.nonzero_buckets());
    }
}
