//! Event sinks: where emitted [`Event`]s go.
//!
//! A sink is fan-out plumbing, not business logic — implementations must
//! be cheap, non-blocking-ish, and must never panic into the host (write
//! errors are swallowed; telemetry loss is preferable to crashing a
//! training run or a serving replica).

use std::fs::OpenOptions;
use std::io::{BufWriter, Write};
use std::path::Path;
use std::sync::Mutex;

use crate::event::Event;

/// Receives every emitted [`Event`].
///
/// Implementations are shared across threads ([`Send`] + [`Sync`]) and are
/// called from whatever thread emitted — training loops, pool workers,
/// serving connection threads.
pub trait Sink: Send + Sync {
    /// Handles one event. Must not panic.
    fn emit(&self, event: &Event);

    /// Whether this sink wants events at all. The global dispatcher ORs
    /// this across installed sinks into one `AtomicBool`; when every sink
    /// is inactive the emit hot path is a single relaxed atomic load.
    fn active(&self) -> bool {
        true
    }

    /// Flushes any buffered output.
    fn flush(&self) {}
}

/// Discards everything and reports itself inactive.
///
/// Installing only `NullSink`s leaves the global enabled flag false, so
/// instrumented hot paths (train steps, backward passes) skip event
/// construction and even their `Instant::now()` calls — the per-step cost
/// is one relaxed atomic load. The alloc-budget test in `atnn-core` pins
/// this.
#[derive(Debug, Default, Clone, Copy)]
pub struct NullSink;

impl Sink for NullSink {
    fn emit(&self, _event: &Event) {}

    fn active(&self) -> bool {
        false
    }
}

/// Renders events as human-readable lines on stderr.
///
/// This replaces the ad-hoc `verbose` prints the trainers used to do; the
/// line format for `EpochEnd` is unchanged from those prints.
#[derive(Debug, Default, Clone, Copy)]
pub struct StderrSink;

impl StderrSink {
    /// The human-readable one-line rendering of `event` (no newline).
    pub fn render(event: &Event) -> String {
        match event {
            Event::EpochEnd { model, epoch, loss_i, loss_g, loss_s, val_auc } => format!(
                "[{model}] epoch {epoch}: L_i={loss_i:.4} L_g={loss_g:.4} L_s={loss_s:.4}{}",
                val_auc.map(|a| format!(" val_auc={a:.4}")).unwrap_or_default()
            ),
            Event::StepTiming { section, ns, rows } => {
                format!("{section}: {:.3} ms ({rows} rows)", *ns as f64 / 1e6)
            }
            Event::Backward { ns, nodes } => {
                format!("backward: {:.3} ms ({nodes} nodes)", *ns as f64 / 1e6)
            }
            Event::GradNorm { norm, clipped } => {
                format!("grad_norm={norm:.4}{}", if *clipped { " (clipped)" } else { "" })
            }
            Event::EarlyStop { model, stopped_epoch, best_epoch } => {
                format!("[{model}] early stop after epoch {stopped_epoch}, kept epoch {best_epoch}")
            }
            Event::Swap { version } => format!("model swap -> v{version}"),
            Event::Shed { endpoint } => format!("shed request on {endpoint}"),
            Event::Span { label, ns } => format!("{label}: {:.3} ms", *ns as f64 / 1e6),
            Event::KernelDispatch { tiled, small, edge_tiles, parallel, backend } => format!(
                "kernels[{backend}]: tiled={tiled} small={small} edge_tiles={edge_tiles} \
                 parallel={parallel}"
            ),
        }
    }
}

impl Sink for StderrSink {
    fn emit(&self, event: &Event) {
        eprintln!("{}", Self::render(event));
    }
}

/// Appends one JSON object per event to a writer (append-only JSONL).
///
/// The stream is replayable: each line parses back with
/// [`Event::from_json`] into an event equal to the one emitted.
pub struct JsonlSink {
    out: Mutex<BufWriter<Box<dyn Write + Send>>>,
}

impl std::fmt::Debug for JsonlSink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("JsonlSink")
    }
}

impl JsonlSink {
    /// Opens (creating if needed) `path` in append mode.
    pub fn append(path: impl AsRef<Path>) -> std::io::Result<JsonlSink> {
        let file = OpenOptions::new().create(true).append(true).open(path)?;
        Ok(JsonlSink::from_writer(file))
    }

    /// Wraps an arbitrary writer (e.g. an in-memory buffer in tests).
    pub fn from_writer(w: impl Write + Send + 'static) -> JsonlSink {
        JsonlSink { out: Mutex::new(BufWriter::new(Box::new(w))) }
    }
}

impl Sink for JsonlSink {
    fn emit(&self, event: &Event) {
        let mut out = match self.out.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        };
        // Telemetry writes are best-effort: a full disk must not take the
        // training run down with it.
        let _ = writeln!(out, "{}", event.to_json());
    }

    fn flush(&self) {
        let mut out = match self.out.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        };
        let _ = out.flush();
    }
}

/// Buffers events in memory; for tests and programmatic consumers.
#[derive(Debug, Default)]
pub struct CaptureSink {
    events: Mutex<Vec<Event>>,
}

impl CaptureSink {
    /// Fresh, empty capture buffer.
    pub fn new() -> CaptureSink {
        CaptureSink::default()
    }

    /// Drains and returns everything captured so far.
    pub fn take(&self) -> Vec<Event> {
        std::mem::take(&mut *self.events.lock().expect("capture sink poisoned"))
    }

    /// Clones the captured events without draining.
    pub fn snapshot(&self) -> Vec<Event> {
        self.events.lock().expect("capture sink poisoned").clone()
    }

    /// Number of events captured so far.
    pub fn len(&self) -> usize {
        self.events.lock().expect("capture sink poisoned").len()
    }

    /// Whether nothing has been captured yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl Sink for CaptureSink {
    fn emit(&self, event: &Event) {
        self.events.lock().expect("capture sink poisoned").push(event.clone());
    }
}
