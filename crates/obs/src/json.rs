//! Minimal hand-rolled JSON support for the event stream.
//!
//! The workspace is dependency-free, so the JSONL sink writes and parses
//! its own JSON. Only the subset events need is supported: one *flat*
//! object per line whose values are strings, numbers, booleans, or null —
//! no nesting, no arrays. Numbers are kept as raw text during parsing so
//! the caller can parse them to exactly the width it stored (`u64`,
//! `f32`, `f64`) with no double-rounding; Rust's shortest round-trip
//! float `Display` on the writing side then makes emit → parse exact.

use std::fmt::Write as _;

/// One scalar value in a flat JSON object.
#[derive(Debug, Clone, PartialEq)]
pub enum Scalar {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number, kept as its raw source text.
    Number(String),
    /// A (de-escaped) string.
    String(String),
}

/// Why a line failed to parse as a flat JSON object.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Human-readable description of the first problem found.
    pub message: &'static str,
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid JSON object: {}", self.message)
    }
}

impl std::error::Error for JsonError {}

fn err<T>(message: &'static str) -> Result<T, JsonError> {
    Err(JsonError { message })
}

/// Appends `s` to `out` as a quoted JSON string, escaping as needed.
pub fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A byte-cursor parser over one flat JSON object.
struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8, message: &'static str) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            err(message)
        }
    }

    fn parse_string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"', "expected '\"'")?;
        let mut out = String::new();
        loop {
            let Some(b) = self.peek() else { return err("unterminated string") };
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(esc) = self.peek() else { return err("unterminated escape") };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let end = self.pos + 4;
                            let hex = self
                                .bytes
                                .get(self.pos..end)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or(JsonError { message: "truncated \\u escape" })?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| JsonError { message: "bad \\u escape" })?;
                            // Basic-multilingual-plane only: events never emit
                            // surrogate pairs (escapes are only produced for
                            // control characters).
                            let c = char::from_u32(code)
                                .ok_or(JsonError { message: "\\u escape is not a scalar value" })?;
                            out.push(c);
                            self.pos = end;
                        }
                        _ => return err("unknown escape"),
                    }
                }
                _ => {
                    // Re-decode from the byte after the one consumed: strings
                    // are UTF-8, so multi-byte characters are copied whole.
                    let start = self.pos - 1;
                    let rest = std::str::from_utf8(&self.bytes[start..])
                        .map_err(|_| JsonError { message: "invalid UTF-8 in string" })?;
                    let c = rest.chars().next().expect("non-empty by construction");
                    out.push(c);
                    self.pos = start + c.len_utf8();
                }
            }
        }
    }

    fn parse_scalar(&mut self) -> Result<Scalar, JsonError> {
        match self.peek() {
            Some(b'"') => Ok(Scalar::String(self.parse_string()?)),
            Some(b't') => {
                self.literal(b"true")?;
                Ok(Scalar::Bool(true))
            }
            Some(b'f') => {
                self.literal(b"false")?;
                Ok(Scalar::Bool(false))
            }
            Some(b'n') => {
                self.literal(b"null")?;
                Ok(Scalar::Null)
            }
            Some(b) if b == b'-' || b.is_ascii_digit() => {
                let start = self.pos;
                while let Some(b) = self.peek() {
                    if b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E') {
                        self.pos += 1;
                    } else {
                        break;
                    }
                }
                let text = std::str::from_utf8(&self.bytes[start..self.pos])
                    .expect("ASCII by construction");
                Ok(Scalar::Number(text.to_string()))
            }
            Some(b'{') | Some(b'[') => err("nested values are not supported"),
            _ => err("expected a scalar value"),
        }
    }

    fn literal(&mut self, lit: &'static [u8]) -> Result<(), JsonError> {
        if self.bytes.get(self.pos..self.pos + lit.len()) == Some(lit) {
            self.pos += lit.len();
            Ok(())
        } else {
            err("unknown literal")
        }
    }
}

/// Parses one flat JSON object into its `(key, value)` pairs, in source
/// order. Duplicate keys are rejected.
pub fn parse_flat_object(line: &str) -> Result<Vec<(String, Scalar)>, JsonError> {
    let mut p = Parser { bytes: line.as_bytes(), pos: 0 };
    p.skip_ws();
    p.expect(b'{', "expected '{'")?;
    let mut out: Vec<(String, Scalar)> = Vec::new();
    p.skip_ws();
    if p.peek() == Some(b'}') {
        p.pos += 1;
    } else {
        loop {
            p.skip_ws();
            let key = p.parse_string()?;
            if out.iter().any(|(k, _)| *k == key) {
                return err("duplicate key");
            }
            p.skip_ws();
            p.expect(b':', "expected ':'")?;
            p.skip_ws();
            let value = p.parse_scalar()?;
            out.push((key, value));
            p.skip_ws();
            match p.peek() {
                Some(b',') => p.pos += 1,
                Some(b'}') => {
                    p.pos += 1;
                    break;
                }
                _ => return err("expected ',' or '}'"),
            }
        }
    }
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return err("trailing garbage after object");
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_flat_objects() {
        let got = parse_flat_object(
            r#"{"event":"swap","version":7,"ok":true,"x":null,"f":-1.25e3,"s":"a\"b\\c\nd"}"#,
        )
        .unwrap();
        assert_eq!(
            got,
            vec![
                ("event".into(), Scalar::String("swap".into())),
                ("version".into(), Scalar::Number("7".into())),
                ("ok".into(), Scalar::Bool(true)),
                ("x".into(), Scalar::Null),
                ("f".into(), Scalar::Number("-1.25e3".into())),
                ("s".into(), Scalar::String("a\"b\\c\nd".into())),
            ]
        );
        assert_eq!(parse_flat_object("{}").unwrap(), vec![]);
    }

    #[test]
    fn escaping_roundtrips() {
        let nasty = "quote\" backslash\\ newline\n tab\t ctrl\u{1} unicode é λ";
        let mut buf = String::new();
        write_string(&mut buf, nasty);
        let line = format!("{{\"k\":{buf}}}");
        let got = parse_flat_object(&line).unwrap();
        assert_eq!(got, vec![("k".into(), Scalar::String(nasty.into()))]);
    }

    #[test]
    fn rejects_malformed_lines() {
        for bad in [
            "",
            "{",
            "{}x",
            r#"{"a":}"#,
            r#"{"a":1,}"#,
            r#"{"a":1 "b":2}"#,
            r#"{"a":{"nested":1}}"#,
            r#"{"a":[1]}"#,
            r#"{"a":1,"a":2}"#,
            r#"{"a":tru}"#,
        ] {
            assert!(parse_flat_object(bad).is_err(), "accepted: {bad:?}");
        }
    }
}
