//! `atnn-obs` — zero-dependency structured telemetry for the ATNN
//! workspace.
//!
//! The paper's system is *operated*: Alibaba's deployment watches
//! per-stage latency, loss curves, and popularity drift to decide when
//! the cold→warm switch and retraining fire (§IV-D, §V). This crate is
//! the substrate those signals flow through. It has two halves:
//!
//! * **Instruments** — [`Counter`], [`Gauge`], [`Histogram`]: always-on,
//!   lock-free, allocation-free scalars. The histogram is the ×1.25
//!   geometric-bucket design lifted out of `atnn-serve` (whose `Stats`
//!   replies stay bit-identical on top of it).
//! * **Events** — a typed stream ([`Event`]) fanned out to pluggable
//!   [`Sink`]s: [`JsonlSink`] (append-only JSON-per-line, replayable),
//!   [`StderrSink`] (human-readable progress lines), [`NullSink`]
//!   (discard; keeps the hot path down to one atomic load), and
//!   [`CaptureSink`] (in-memory, for tests).
//!
//! # Emitting
//!
//! Producers call [`emit`] unconditionally — it is gated on a global
//! `AtomicBool` that is true only while at least one *active* sink is
//! installed. For events that need a timestamp or other preparation, gate
//! the preparation too:
//!
//! ```
//! use atnn_obs::{emit, timing_enabled, Event};
//!
//! let t0 = timing_enabled().then(std::time::Instant::now);
//! // ... do the work ...
//! if let Some(t0) = t0 {
//!     emit(&Event::Span { label: "example".into(), ns: t0.elapsed().as_nanos() as u64 });
//! }
//! ```
//!
//! or use the [`span!`] macro / [`span()`] guard, which does exactly that
//! on drop. With no active sink the cost of an instrumented section is a
//! single relaxed atomic load — no `Instant::now()`, no event
//! construction, no allocation (the alloc-budget test in `atnn-core`
//! pins this).
//!
//! # Installing sinks
//!
//! ```
//! use std::sync::Arc;
//! use atnn_obs::{install_scoped, CaptureSink, Event};
//!
//! let capture = Arc::new(CaptureSink::new());
//! let _guard = install_scoped(capture.clone());
//! atnn_obs::emit(&Event::Swap { version: 3 });
//! assert_eq!(capture.take(), vec![Event::Swap { version: 3 }]);
//! // guard drop uninstalls the sink
//! ```

#![deny(missing_docs)]

mod event;
pub mod json;
mod metrics;
mod process;
mod sink;

pub use event::{Event, EventParseError, Str};
pub use metrics::{Counter, Gauge, Histogram, BASE_NS, BUCKETS};
pub use process::{current_rss_bytes, peak_rss_bytes};
pub use sink::{CaptureSink, JsonlSink, NullSink, Sink, StderrSink};

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, OnceLock, RwLock};
use std::time::Instant;

/// True while at least one installed sink reports [`Sink::active`].
static ENABLED: AtomicBool = AtomicBool::new(false);
static NEXT_ID: AtomicU64 = AtomicU64::new(1);

type Registry = RwLock<Vec<(u64, Arc<dyn Sink>)>>;

fn registry() -> &'static Registry {
    static SINKS: OnceLock<Registry> = OnceLock::new();
    SINKS.get_or_init(|| RwLock::new(Vec::new()))
}

fn lock_read(r: &Registry) -> std::sync::RwLockReadGuard<'_, Vec<(u64, Arc<dyn Sink>)>> {
    match r.read() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

fn recompute_enabled(sinks: &[(u64, Arc<dyn Sink>)]) {
    let any_active = sinks.iter().any(|(_, s)| s.active());
    ENABLED.store(any_active, Ordering::Release);
}

/// Handle to an installed sink; pass to [`uninstall`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SinkId(u64);

/// Installs a sink into the global dispatcher. Returns its id.
///
/// Sinks receive every subsequent [`emit`] until [`uninstall`]ed. Prefer
/// [`install_scoped`] where the sink's lifetime maps to a scope (tests,
/// one training run).
pub fn install(sink: Arc<dyn Sink>) -> SinkId {
    let id = NEXT_ID.fetch_add(1, Ordering::Relaxed);
    let mut sinks = match registry().write() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    };
    sinks.push((id, sink));
    recompute_enabled(&sinks);
    SinkId(id)
}

/// Removes a previously [`install`]ed sink. Returns whether it was still
/// installed, after flushing it.
pub fn uninstall(id: SinkId) -> bool {
    let removed = {
        let mut sinks = match registry().write() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        };
        let before = sinks.len();
        let removed: Vec<_> = {
            let mut kept = Vec::with_capacity(before);
            let mut removed = Vec::new();
            for entry in sinks.drain(..) {
                if entry.0 == id.0 {
                    removed.push(entry.1);
                } else {
                    kept.push(entry);
                }
            }
            *sinks = kept;
            removed
        };
        recompute_enabled(&sinks);
        removed
    };
    let any = !removed.is_empty();
    for sink in removed {
        sink.flush();
    }
    any
}

/// Uninstalls its sink when dropped. Returned by [`install_scoped`].
#[derive(Debug)]
pub struct SinkGuard(Option<SinkId>);

impl SinkGuard {
    /// The installed sink's id (e.g. to uninstall it early by hand, after
    /// which the guard's drop is a no-op only if you also [`std::mem::forget`]
    /// it — prefer just dropping the guard).
    pub fn id(&self) -> SinkId {
        self.0.expect("guard still armed")
    }
}

impl Drop for SinkGuard {
    fn drop(&mut self) {
        if let Some(id) = self.0.take() {
            uninstall(id);
        }
    }
}

/// Installs a sink for the current scope; the returned guard uninstalls
/// (and flushes) it on drop.
#[must_use = "dropping the guard immediately uninstalls the sink"]
pub fn install_scoped(sink: Arc<dyn Sink>) -> SinkGuard {
    SinkGuard(Some(install(sink)))
}

/// Whether any active sink is installed (one relaxed atomic load).
///
/// Producers do not need to call this before [`emit`] — `emit` checks it
/// itself — but should use it (or [`timing_enabled`]) to skip *preparing*
/// an event: taking timestamps, counting rows, formatting.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Acquire)
}

/// Alias of [`enabled`] that reads better at timing sites:
/// `timing_enabled().then(Instant::now)`.
#[inline]
pub fn timing_enabled() -> bool {
    enabled()
}

/// Fans `event` out to every installed sink. No-op (one atomic load) when
/// nothing active is installed.
#[inline]
pub fn emit(event: &Event) {
    if enabled() {
        emit_always(event);
    }
}

/// Fans `event` out even if the enabled flag is down (e.g. to push a
/// final record through inactive-but-installed sinks). Rarely what you
/// want; prefer [`emit`].
pub fn emit_always(event: &Event) {
    let sinks = lock_read(registry());
    for (_, sink) in sinks.iter() {
        sink.emit(event);
    }
}

/// Flushes every installed sink (e.g. before reading a JSONL file back).
pub fn flush() {
    let sinks = lock_read(registry());
    for (_, sink) in sinks.iter() {
        sink.flush();
    }
}

/// A scoped timer: emits [`Event::Span`] with its wall time on drop.
///
/// Created by [`span()`] / the [`span!`] macro. When no sink was active at
/// creation the guard holds no timestamp and drop does nothing, so the
/// disabled cost is one atomic load.
#[derive(Debug)]
pub struct SpanTimer {
    label: &'static str,
    start: Option<Instant>,
}

impl SpanTimer {
    /// Elapsed nanoseconds so far, if the span is live (a sink was active
    /// at creation).
    pub fn elapsed_ns(&self) -> Option<u64> {
        self.start.map(|t0| t0.elapsed().as_nanos() as u64)
    }
}

impl Drop for SpanTimer {
    fn drop(&mut self) {
        if let Some(t0) = self.start {
            emit(&Event::Span { label: self.label.into(), ns: t0.elapsed().as_nanos() as u64 });
        }
    }
}

/// Starts a scoped timer labelled `label`; see [`SpanTimer`].
#[inline]
pub fn span(label: &'static str) -> SpanTimer {
    SpanTimer { label, start: timing_enabled().then(Instant::now) }
}

/// Times the enclosing scope: `let _t = span!("encode.batch");` emits
/// [`Event::Span`] when `_t` drops. Sugar for [`span()`].
#[macro_export]
macro_rules! span {
    ($label:expr) => {
        $crate::span($label)
    };
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    /// Installing into the process-global registry would bleed between
    /// `cargo test` threads; every test that installs takes this lock.
    static SERIAL: Mutex<()> = Mutex::new(());

    fn serial() -> std::sync::MutexGuard<'static, ()> {
        match SERIAL.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    #[test]
    fn null_sink_keeps_dispatch_disabled() {
        let _s = serial();
        assert!(!enabled());
        let guard = install_scoped(Arc::new(NullSink));
        assert!(!enabled(), "NullSink must not arm the enabled flag");
        emit(&Event::Swap { version: 1 }); // goes nowhere, must not panic
        drop(guard);
        assert!(!enabled());
    }

    #[test]
    fn capture_sink_sees_emitted_events_and_scoped_uninstall_works() {
        let _s = serial();
        let capture = Arc::new(CaptureSink::new());
        {
            let _guard = install_scoped(capture.clone());
            assert!(enabled());
            emit(&Event::Swap { version: 9 });
            emit(&Event::Shed { endpoint: "score".into() });
        }
        assert!(!enabled(), "guard drop must disarm the flag");
        emit(&Event::Swap { version: 10 }); // after uninstall: dropped
        assert_eq!(
            capture.take(),
            vec![Event::Swap { version: 9 }, Event::Shed { endpoint: "score".into() }]
        );
    }

    #[test]
    fn mixed_sinks_arm_the_flag_only_while_an_active_one_is_installed() {
        let _s = serial();
        let null = install(Arc::new(NullSink));
        assert!(!enabled());
        let capture = Arc::new(CaptureSink::new());
        let cap = install(capture.clone());
        assert!(enabled());
        assert!(uninstall(cap));
        assert!(!enabled(), "only the NullSink remains");
        assert!(uninstall(null));
        assert!(!uninstall(null), "double uninstall reports false");
    }

    #[test]
    fn span_emits_on_drop_only_when_enabled() {
        let _s = serial();
        {
            let t = span!("dead");
            assert!(t.elapsed_ns().is_none(), "no sink: span must not take timestamps");
        }
        let capture = Arc::new(CaptureSink::new());
        let _guard = install_scoped(capture.clone());
        {
            let _t = span!("live.section");
        }
        let events = capture.take();
        assert_eq!(events.len(), 1);
        match &events[0] {
            Event::Span { label, .. } => assert_eq!(label, "live.section"),
            other => panic!("wrong event: {other:?}"),
        }
    }
}
