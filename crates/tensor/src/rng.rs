//! Deterministic random initialization for matrices.
//!
//! Everything in the reproduction is seeded: data simulation, weight
//! initialization and training-time shuffles all flow from explicit
//! [`Rng64`] instances so every table in `EXPERIMENTS.md` regenerates
//! byte-identically.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::Matrix;

/// A small deterministic RNG wrapper around [`StdRng`] with the sampling
/// helpers this workspace needs (uniform, standard normal via Box–Muller,
/// Bernoulli, index sampling).
#[derive(Debug, Clone)]
pub struct Rng64 {
    inner: StdRng,
    /// Cached second Box–Muller variate.
    spare_normal: Option<f32>,
}

impl Rng64 {
    /// Creates an RNG from a 64-bit seed.
    pub fn seed_from_u64(seed: u64) -> Self {
        Rng64 { inner: StdRng::seed_from_u64(seed), spare_normal: None }
    }

    /// Derives an independent child RNG; `salt` distinguishes siblings.
    ///
    /// Used to give each subsystem (weights, data, shuffles) its own stream
    /// so adding draws to one cannot perturb another.
    pub fn fork(&mut self, salt: u64) -> Self {
        let seed = self.inner.random::<u64>() ^ salt.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        Rng64::seed_from_u64(seed)
    }

    /// Uniform sample in `[0, 1)`.
    #[inline]
    pub fn uniform(&mut self) -> f32 {
        self.inner.random::<f32>()
    }

    /// Uniform sample in `[lo, hi)`.
    #[inline]
    pub fn uniform_in(&mut self, lo: f32, hi: f32) -> f32 {
        lo + (hi - lo) * self.uniform()
    }

    /// Standard normal sample via the Box–Muller transform.
    pub fn normal(&mut self) -> f32 {
        if let Some(z) = self.spare_normal.take() {
            return z;
        }
        // Guard u1 away from 0 so ln() stays finite.
        let u1 = self.uniform().max(f32::MIN_POSITIVE);
        let u2 = self.uniform();
        let r = (-2.0 * u1.ln()).sqrt();
        let theta = 2.0 * std::f32::consts::PI * u2;
        self.spare_normal = Some(r * theta.sin());
        r * theta.cos()
    }

    /// Normal sample with the given mean and standard deviation.
    #[inline]
    pub fn normal_with(&mut self, mean: f32, std: f32) -> f32 {
        mean + std * self.normal()
    }

    /// Bernoulli trial with success probability `p` (clamped to `[0, 1]`).
    #[inline]
    pub fn bernoulli(&mut self, p: f32) -> bool {
        self.uniform() < p
    }

    /// Uniform integer in `[0, bound)`. Panics when `bound == 0`.
    #[inline]
    pub fn index(&mut self, bound: usize) -> usize {
        assert!(bound > 0, "index bound must be positive");
        self.inner.random_range(0..bound)
    }

    /// Uniform `u64`.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.inner.random::<u64>()
    }

    /// Samples a Poisson count with rate `lambda` (Knuth for small rates,
    /// normal approximation above 30 to stay O(1)).
    pub fn poisson(&mut self, lambda: f32) -> u32 {
        if lambda <= 0.0 {
            return 0;
        }
        if lambda > 30.0 {
            let z = self.normal_with(lambda, lambda.sqrt());
            return z.round().max(0.0) as u32;
        }
        let limit = (-lambda).exp();
        let mut k = 0u32;
        let mut p = 1.0f32;
        loop {
            p *= self.uniform();
            if p <= limit {
                return k;
            }
            k += 1;
        }
    }

    /// Fisher–Yates shuffle of a slice.
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.index(i + 1);
            xs.swap(i, j);
        }
    }
}

/// Weight-initialization schemes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Init {
    /// All zeros (biases).
    Zeros,
    /// Constant fill.
    Constant(f32),
    /// Uniform in `[-limit, limit]`.
    Uniform(f32),
    /// Glorot/Xavier uniform: `limit = sqrt(6 / (fan_in + fan_out))`.
    XavierUniform,
    /// He/Kaiming normal: `std = sqrt(2 / fan_in)`; pairs with ReLU.
    HeNormal,
    /// Normal with explicit std.
    Normal(f32),
}

impl Init {
    /// Samples a `rows x cols` matrix. For layers, `rows` is treated as
    /// fan-in and `cols` as fan-out (weights are stored `[in, out]`).
    pub fn sample(self, rows: usize, cols: usize, rng: &mut Rng64) -> Matrix {
        match self {
            Init::Zeros => Matrix::zeros(rows, cols),
            Init::Constant(c) => Matrix::full(rows, cols, c),
            Init::Uniform(limit) => {
                Matrix::from_fn(rows, cols, |_, _| rng.uniform_in(-limit, limit))
            }
            Init::XavierUniform => {
                let limit = (6.0 / (rows + cols).max(1) as f32).sqrt();
                Matrix::from_fn(rows, cols, |_, _| rng.uniform_in(-limit, limit))
            }
            Init::HeNormal => {
                let std = (2.0 / rows.max(1) as f32).sqrt();
                Matrix::from_fn(rows, cols, |_, _| rng.normal_with(0.0, std))
            }
            Init::Normal(std) => Matrix::from_fn(rows, cols, |_, _| rng.normal_with(0.0, std)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeding_is_deterministic() {
        let mut a = Rng64::seed_from_u64(7);
        let mut b = Rng64::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn forks_are_independent_streams() {
        let mut root = Rng64::seed_from_u64(1);
        let mut c1 = root.fork(1);
        let mut c2 = root.fork(2);
        // Not a rigorous independence test; just ensure the streams differ.
        let a: Vec<u64> = (0..8).map(|_| c1.next_u64()).collect();
        let b: Vec<u64> = (0..8).map(|_| c2.next_u64()).collect();
        assert_ne!(a, b);
    }

    #[test]
    fn normal_moments_are_plausible() {
        let mut rng = Rng64::seed_from_u64(42);
        let n = 20_000;
        let samples: Vec<f32> = (0..n).map(|_| rng.normal()).collect();
        let mean = samples.iter().sum::<f32>() / n as f32;
        let var = samples.iter().map(|&x| (x - mean) * (x - mean)).sum::<f32>() / n as f32;
        assert!(mean.abs() < 0.03, "mean={mean}");
        assert!((var - 1.0).abs() < 0.05, "var={var}");
    }

    #[test]
    fn poisson_mean_tracks_lambda() {
        let mut rng = Rng64::seed_from_u64(9);
        for &lambda in &[0.5f32, 3.0, 12.0, 80.0] {
            let n = 4000;
            let mean = (0..n).map(|_| rng.poisson(lambda) as f32).sum::<f32>() / n as f32;
            assert!((mean - lambda).abs() < 0.15 * lambda.max(1.0), "lambda={lambda} mean={mean}");
        }
        assert_eq!(rng.poisson(0.0), 0);
        assert_eq!(rng.poisson(-1.0), 0);
    }

    #[test]
    fn bernoulli_frequency() {
        let mut rng = Rng64::seed_from_u64(3);
        let hits = (0..10_000).filter(|_| rng.bernoulli(0.3)).count();
        assert!((hits as f32 / 10_000.0 - 0.3).abs() < 0.02);
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = Rng64::seed_from_u64(5);
        let mut xs: Vec<usize> = (0..50).collect();
        rng.shuffle(&mut xs);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(xs, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn xavier_limits_respected() {
        let mut rng = Rng64::seed_from_u64(11);
        let m = Init::XavierUniform.sample(30, 20, &mut rng);
        let limit = (6.0f32 / 50.0).sqrt();
        assert!(m.max_abs() <= limit + 1e-6);
        assert!(m.max_abs() > limit * 0.5); // actually spread out
    }

    #[test]
    fn he_normal_std_is_plausible() {
        let mut rng = Rng64::seed_from_u64(13);
        let m = Init::HeNormal.sample(200, 100, &mut rng);
        let std_expected = (2.0f32 / 200.0).sqrt();
        let var = m.as_slice().iter().map(|&v| v * v).sum::<f32>() / m.len() as f32;
        assert!((var.sqrt() - std_expected).abs() < 0.01);
    }

    #[test]
    fn zeros_and_constant() {
        let mut rng = Rng64::seed_from_u64(1);
        assert_eq!(Init::Zeros.sample(2, 2, &mut rng).as_slice(), &[0.0; 4]);
        assert_eq!(Init::Constant(0.5).sample(1, 3, &mut rng).as_slice(), &[0.5; 3]);
    }
}
