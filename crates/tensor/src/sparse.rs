//! Sparse row-indexed gradients for embedding tables.
//!
//! A minibatch only touches a few hundred rows of a `vocab x dim` table,
//! so its gradient is a short list of `(row, dim-vector)` pairs rather
//! than a dense matrix. [`SparseRowGrad`] stores exactly that, reusing
//! its buffers across steps so the training hot loop performs no
//! per-step allocation once capacities have warmed up.
//!
//! # Bit-identity contract
//!
//! The dense scatter path sums duplicate rows in *occurrence order*
//! (`grad[row] += g[k]` for `k` ascending). [`SparseRowGrad::coalesce`]
//! reproduces that order exactly: entries are sorted by row with a
//! stable permutation, and duplicates merge by summing in insertion
//! order — so every coalesced row value is the same `f32` bit pattern
//! the dense scatter would have produced (up to the sign of zero, which
//! compares equal). Downstream consumers (optimizer updates, norm
//! accumulation) iterate rows ascending, matching dense row-major
//! traversal, which is what makes sparse SGD/AdaGrad bit-identical to
//! their dense sweeps.

use crate::Matrix;

/// A row-sparse gradient for a `rows x dim` parameter: coalesced
/// `(row, dim-vector)` pairs sorted by row.
///
/// Produced by the embedding-gather backward pass and consumed by the
/// sparse optimizer paths. Buffers (entries, sort scratch) are retained
/// across `clear()` so steady-state training does not allocate here.
#[derive(Debug, Clone)]
pub struct SparseRowGrad {
    dim: usize,
    /// Row index per entry; parallel to `vals` chunks of `dim`.
    rows: Vec<u32>,
    vals: Vec<f32>,
    coalesced: bool,
    // Scratch reused across coalesce() calls.
    perm: Vec<u32>,
    out_rows: Vec<u32>,
    out_vals: Vec<f32>,
}

impl SparseRowGrad {
    /// Creates an empty sparse gradient for rows of width `dim`.
    ///
    /// # Panics
    /// Panics when `dim == 0` (a zero-width table has no gradient rows).
    pub fn new(dim: usize) -> Self {
        assert!(dim > 0, "SparseRowGrad requires dim > 0");
        SparseRowGrad {
            dim,
            rows: Vec::new(),
            vals: Vec::new(),
            coalesced: true,
            perm: Vec::new(),
            out_rows: Vec::new(),
            out_vals: Vec::new(),
        }
    }

    /// Row width this gradient was created for.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of stored entries (rows counted with multiplicity until
    /// [`SparseRowGrad::coalesce`] merges duplicates).
    pub fn nnz(&self) -> usize {
        self.rows.len()
    }

    /// True when no entries are stored.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// True when entries are sorted by row with no duplicates.
    pub fn is_coalesced(&self) -> bool {
        self.coalesced
    }

    /// Drops all entries but keeps every buffer's capacity.
    pub fn clear(&mut self) {
        self.rows.clear();
        self.vals.clear();
        self.coalesced = true;
    }

    /// Appends one `(row, values)` entry.
    ///
    /// # Panics
    /// Panics when `values.len() != dim`.
    pub fn push_row(&mut self, row: u32, values: &[f32]) {
        assert_eq!(values.len(), self.dim, "push_row width mismatch");
        self.rows.push(row);
        self.vals.extend_from_slice(values);
        self.coalesced = false;
    }

    /// Appends row `indices[k]` with values `block.row(k)` for every `k`
    /// — the shape the gather backward produces (`g` is `batch x dim`,
    /// `indices` the batch's row ids).
    ///
    /// # Panics
    /// Panics when `block` is not `indices.len() x dim`.
    pub fn push_rows(&mut self, indices: &[u32], block: &Matrix) {
        assert_eq!(block.cols(), self.dim, "push_rows width mismatch");
        assert_eq!(block.rows(), indices.len(), "push_rows row-count mismatch");
        if indices.is_empty() {
            return;
        }
        self.rows.extend_from_slice(indices);
        self.vals.extend_from_slice(block.as_slice());
        self.coalesced = false;
    }

    /// Sorts entries by row and merges duplicates, summing their values
    /// in insertion order (the dense scatter's occurrence order — see
    /// the module docs for why this preserves bit-identity).
    ///
    /// Idempotent; uses retained scratch buffers, so steady-state calls
    /// only allocate while capacities are still growing.
    pub fn coalesce(&mut self) {
        if self.coalesced {
            return;
        }
        let n = self.rows.len();
        self.perm.clear();
        self.perm.extend(0..n as u32);
        // (row, insertion index) keys are unique, so the unstable sort is
        // deterministic and equals the stable sort-by-row — without the
        // merge-sort scratch allocation.
        let rows = &self.rows;
        self.perm.sort_unstable_by_key(|&i| (rows[i as usize], i));
        self.out_rows.clear();
        self.out_vals.clear();
        let dim = self.dim;
        let mut k = 0;
        while k < n {
            let src = self.perm[k] as usize;
            let row = self.rows[src];
            self.out_rows.push(row);
            let base = self.out_vals.len();
            self.out_vals.extend_from_slice(&self.vals[src * dim..(src + 1) * dim]);
            k += 1;
            while k < n && self.rows[self.perm[k] as usize] == row {
                let src = self.perm[k] as usize;
                let seg = &self.vals[src * dim..(src + 1) * dim];
                for (o, &v) in self.out_vals[base..].iter_mut().zip(seg) {
                    *o += v;
                }
                k += 1;
            }
        }
        std::mem::swap(&mut self.rows, &mut self.out_rows);
        std::mem::swap(&mut self.vals, &mut self.out_vals);
        self.coalesced = true;
    }

    /// Iterates `(row, values)` entries in storage order (ascending rows
    /// once coalesced).
    pub fn iter(&self) -> impl Iterator<Item = (u32, &[f32])> {
        self.rows.iter().copied().zip(self.vals.chunks_exact(self.dim))
    }

    /// The stored row ids, in storage order.
    pub fn row_ids(&self) -> &[u32] {
        &self.rows
    }

    /// Multiplies every stored value by `alpha` (gradient clipping).
    pub fn scale(&mut self, alpha: f32) {
        for v in &mut self.vals {
            *v *= alpha;
        }
    }

    /// Sum of squared values, accumulated in storage order. On a
    /// coalesced gradient this is bit-identical to the dense matrix's
    /// row-major `Σ v²` because untouched rows contribute exact `+0.0`
    /// terms that cannot change the accumulator.
    pub fn l2_sq(&self) -> f32 {
        debug_assert!(self.coalesced, "l2_sq on uncoalesced gradient double-counts rows");
        self.vals.iter().map(|&v| v * v).sum()
    }

    /// Adds every entry into the matching row of `out` (`out[row] += values`).
    ///
    /// # Panics
    /// Panics when `out.cols() != dim` or a row id is out of range.
    pub fn add_into_dense(&self, out: &mut Matrix) {
        assert_eq!(out.cols(), self.dim, "add_into_dense width mismatch");
        for (row, vals) in self.iter() {
            let dst = out.row_mut(row as usize);
            for (o, &v) in dst.iter_mut().zip(vals) {
                *o += v;
            }
        }
    }

    /// Materializes the dense `rows x dim` gradient.
    pub fn to_dense(&self, rows: usize) -> Matrix {
        let mut out = Matrix::zeros(rows, self.dim);
        self.add_into_dense(&mut out);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_coalesce_merges_duplicates_in_occurrence_order() {
        let mut sg = SparseRowGrad::new(2);
        sg.push_row(3, &[1.0, 2.0]);
        sg.push_row(1, &[10.0, 20.0]);
        sg.push_row(3, &[0.5, 0.5]);
        assert!(!sg.is_coalesced());
        assert_eq!(sg.nnz(), 3);
        sg.coalesce();
        assert!(sg.is_coalesced());
        assert_eq!(sg.nnz(), 2);
        let entries: Vec<(u32, Vec<f32>)> = sg.iter().map(|(r, v)| (r, v.to_vec())).collect();
        assert_eq!(entries, vec![(1, vec![10.0, 20.0]), (3, vec![1.5, 2.5])]);
    }

    #[test]
    fn coalesce_matches_dense_scatter_bitwise() {
        // Adversarial values where float addition order matters: the
        // coalesced sum must equal the dense scatter's occurrence-order sum.
        let vals = [1.0e7f32, 3.25, -1.0e7, 2.6875, 0.001];
        let mut sg = SparseRowGrad::new(1);
        let mut dense = Matrix::zeros(4, 1);
        for (k, &v) in vals.iter().enumerate() {
            let row = (k % 2) as u32 * 2; // rows 0 and 2, interleaved
            sg.push_row(row, &[v]);
            dense.row_mut(row as usize)[0] += v;
        }
        sg.coalesce();
        assert_eq!(sg.to_dense(4), dense);
    }

    #[test]
    fn push_rows_takes_gather_shaped_blocks() {
        let mut sg = SparseRowGrad::new(3);
        let block = Matrix::from_fn(2, 3, |i, j| (i * 3 + j) as f32);
        sg.push_rows(&[5, 0], &block);
        sg.coalesce();
        let d = sg.to_dense(6);
        assert_eq!(d.row(0), &[3.0, 4.0, 5.0]);
        assert_eq!(d.row(5), &[0.0, 1.0, 2.0]);
    }

    #[test]
    fn clear_keeps_capacity_and_scale_applies() {
        let mut sg = SparseRowGrad::new(2);
        sg.push_row(0, &[2.0, -4.0]);
        sg.coalesce();
        sg.scale(0.5);
        assert_eq!(sg.iter().next().unwrap().1, &[1.0, -2.0]);
        assert!((sg.l2_sq() - 5.0).abs() < 1e-6);
        sg.clear();
        assert!(sg.is_empty() && sg.is_coalesced());
    }

    #[test]
    #[should_panic(expected = "width mismatch")]
    fn rejects_wrong_width() {
        let mut sg = SparseRowGrad::new(2);
        sg.push_row(0, &[1.0]);
    }
}
