//! Chunked copy-on-write tables for incremental snapshot publishes.
//!
//! A serving snapshot's precomputed item tables are large (rows ==
//! catalogue size) but a delta publish touches only a changed set `S`.
//! Storing the table as fixed-height row chunks behind `Arc`s lets a
//! delta build *share* every untouched chunk with the previous snapshot
//! and clone only the chunks containing changed rows
//! ([`Arc::make_mut`]): publish cost and publish-time resident growth
//! become `O(|S| + touched chunks)` instead of `O(rows)`.
//!
//! Two table kinds mirror the snapshot precisions:
//! [`CowMatrix`] over f32 [`Matrix`] chunks and [`CowQuantMatrix`] over
//! int8 [`QuantizedMatrix`] chunks. Both expose row reads identical to
//! their contiguous counterparts — chunking changes layout, never
//! values — and in-place row updates that are bit-identical to
//! rebuilding the row from scratch (f32 rows are copied verbatim; int8
//! rows go through [`QuantizedMatrix::requantize_row`], which is
//! row-local against the table's frozen anchor).

use std::sync::Arc;

use crate::quant::{PreparedQuery, QuantizedMatrix};
use crate::Matrix;

/// Rows per chunk. A power of two so row addressing is a shift + mask;
/// at serving dims (16–128 f32 columns) a chunk is 64 KiB–4 MiB — small
/// enough that cloning the touched chunks of a 1%-changed catalogue
/// stays far below a full-table copy, large enough that the `Arc`
/// indirection is amortized over thousands of rows.
pub const COW_CHUNK_ROWS: usize = 1024;

const CHUNK_SHIFT: u32 = COW_CHUNK_ROWS.trailing_zeros();
const CHUNK_MASK: usize = COW_CHUNK_ROWS - 1;

/// Splits `rows` into chunk ranges of [`COW_CHUNK_ROWS`] (last partial).
fn chunk_ranges(rows: usize) -> impl Iterator<Item = (usize, usize)> {
    (0..rows.div_ceil(COW_CHUNK_ROWS))
        .map(move |c| (c * COW_CHUNK_ROWS, ((c + 1) * COW_CHUNK_ROWS).min(rows)))
}

/// An f32 matrix stored as fixed-height row chunks behind `Arc`s.
///
/// Row reads are bit-identical to the contiguous [`Matrix`] the table
/// was built from; `clone` is `O(chunks)` pointer bumps; updating `k`
/// rows clones only the chunks they land in.
#[derive(Debug, Clone, PartialEq)]
pub struct CowMatrix {
    rows: usize,
    cols: usize,
    chunks: Vec<Arc<Matrix>>,
}

impl CowMatrix {
    /// Chunks `m` (copies once; later clones share the chunks).
    ///
    /// # Panics
    /// Panics on an empty matrix — a zero-row table has no serving use
    /// and would make chunk addressing degenerate.
    pub fn from_matrix(m: &Matrix) -> Self {
        let (rows, cols) = m.shape();
        assert!(rows > 0 && cols > 0, "CowMatrix: empty source matrix");
        let chunks = chunk_ranges(rows)
            .map(|(start, end)| {
                let mut chunk = Matrix::zeros(end - start, cols);
                chunk.as_mut_slice().copy_from_slice(&m.as_slice()[start * cols..end * cols]);
                Arc::new(chunk)
            })
            .collect();
        CowMatrix { rows, cols, chunks }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Row width.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Total element count (`rows × cols`).
    pub fn len(&self) -> usize {
        self.rows * self.cols
    }

    /// True when the table holds no elements (never, by construction).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Row `i` as a slice — same values, same order as the source matrix.
    #[inline]
    pub fn row(&self, i: usize) -> &[f32] {
        self.chunks[i >> CHUNK_SHIFT].row(i & CHUNK_MASK)
    }

    /// Number of chunks backing the table.
    pub fn chunk_count(&self) -> usize {
        self.chunks.len()
    }

    /// How many chunks `self` and `other` share by pointer identity —
    /// the copy-on-write savings a delta actually realized.
    pub fn shared_chunks_with(&self, other: &CowMatrix) -> usize {
        self.chunks.iter().zip(&other.chunks).filter(|(a, b)| Arc::ptr_eq(a, b)).count()
    }

    /// Replaces row `ids[k]` with `rows.row(k)` for every `k`, cloning
    /// only the touched chunks (untouched chunks stay shared with every
    /// other handle to this table).
    ///
    /// # Panics
    /// Panics on a width mismatch, a length mismatch between `ids` and
    /// `rows`, or an id out of range.
    pub fn update_rows(&mut self, ids: &[u32], rows: &Matrix) {
        assert_eq!(rows.cols(), self.cols, "update_rows width mismatch");
        assert_eq!(rows.rows(), ids.len(), "update_rows id/row count mismatch");
        for (k, &id) in ids.iter().enumerate() {
            let i = id as usize;
            assert!(i < self.rows, "update_rows: id {id} out of range ({} rows)", self.rows);
            let chunk = Arc::make_mut(&mut self.chunks[i >> CHUNK_SHIFT]);
            chunk.row_mut(i & CHUNK_MASK).copy_from_slice(rows.row(k));
        }
    }

    /// Materializes the table as one contiguous [`Matrix`] (used when an
    /// index rebuild needs the whole pool; serving never calls this).
    pub fn to_matrix(&self) -> Matrix {
        let mut out = Matrix::zeros(self.rows, self.cols);
        let slice = out.as_mut_slice();
        for ((start, end), chunk) in chunk_ranges(self.rows).zip(&self.chunks) {
            slice[start * self.cols..end * self.cols].copy_from_slice(chunk.as_slice());
        }
        out
    }
}

/// An int8-quantized table stored as fixed-height row chunks behind
/// `Arc`s. Every chunk carries the same anchor values as the source
/// table (bit-identical), so one [`PreparedQuery`] serves all chunks
/// and in-place row re-quantization against the shared anchor is exact.
#[derive(Debug, Clone, PartialEq)]
pub struct CowQuantMatrix {
    rows: usize,
    cols: usize,
    chunks: Vec<Arc<QuantizedMatrix>>,
}

impl CowQuantMatrix {
    /// Chunks `q` by exact row slices — codes, scales and zero points
    /// are copied verbatim, so reads reproduce the source bit for bit.
    ///
    /// # Panics
    /// Panics on an empty table.
    pub fn from_quantized(q: &QuantizedMatrix) -> Self {
        assert!(q.rows() > 0 && q.cols() > 0, "CowQuantMatrix: empty source table");
        let chunks =
            chunk_ranges(q.rows()).map(|(start, end)| Arc::new(q.slice_rows(start, end))).collect();
        CowQuantMatrix { rows: q.rows(), cols: q.cols(), chunks }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Row width.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// The shared anchor row (identical across chunks by construction).
    pub fn anchor(&self) -> &[f32] {
        self.chunks[0].anchor()
    }

    /// Resident bytes across all chunks. Each chunk stores its own copy
    /// of the anchor row, so this exceeds the contiguous table's
    /// footprint by `(chunks - 1) × cols × 4` bytes — noise next to the
    /// codes at serving scale.
    pub fn storage_bytes(&self) -> usize {
        self.chunks.iter().map(|c| c.storage_bytes()).sum()
    }

    /// Bytes the same table would occupy as dense f32.
    pub fn f32_bytes(&self) -> usize {
        self.rows * self.cols * 4
    }

    /// Number of chunks backing the table.
    pub fn chunk_count(&self) -> usize {
        self.chunks.len()
    }

    /// Chunks shared with `other` by pointer identity.
    pub fn shared_chunks_with(&self, other: &CowQuantMatrix) -> usize {
        self.chunks.iter().zip(&other.chunks).filter(|(a, b)| Arc::ptr_eq(a, b)).count()
    }

    /// Quantizes `query` against the shared anchor — interchangeable
    /// with [`QuantizedMatrix::prepare`] on the contiguous source table
    /// (the anchors are bit-identical, so the base term matches).
    pub fn prepare(&self, query: &[f32]) -> PreparedQuery {
        self.chunks[0].prepare(query)
    }

    /// Approximate `dot(row i, query)` — delegates to the chunk holding
    /// the row; identical to the contiguous table's result.
    #[inline]
    pub fn dot_prepared(&self, i: usize, query: &PreparedQuery) -> f32 {
        self.chunks[i >> CHUNK_SHIFT].dot_prepared(i & CHUNK_MASK, query)
    }

    /// Reconstructs row `i` into `out`.
    pub fn dequantize_row_into(&self, i: usize, out: &mut [f32]) {
        self.chunks[i >> CHUNK_SHIFT].dequantize_row_into(i & CHUNK_MASK, out);
    }

    /// Re-quantizes row `ids[k]` in place from `rows.row(k)` against the
    /// table's frozen anchor, cloning only the touched chunks. Exact:
    /// bit-identical to a frozen-anchor rebuild of the same rows (see
    /// [`QuantizedMatrix::requantize_row`]).
    ///
    /// # Panics
    /// Panics on a width/length mismatch or an id out of range.
    pub fn requantize_rows(&mut self, ids: &[u32], rows: &Matrix) {
        assert_eq!(rows.cols(), self.cols, "requantize_rows width mismatch");
        assert_eq!(rows.rows(), ids.len(), "requantize_rows id/row count mismatch");
        for (k, &id) in ids.iter().enumerate() {
            let i = id as usize;
            assert!(i < self.rows, "requantize_rows: id {id} out of range ({} rows)", self.rows);
            let chunk = Arc::make_mut(&mut self.chunks[i >> CHUNK_SHIFT]);
            chunk.requantize_row(i & CHUNK_MASK, rows.row(k));
        }
    }

    /// Concatenates the chunks back into one contiguous
    /// [`QuantizedMatrix`] (artifact persistence); bit-identical to the
    /// table this was chunked from, with all row updates applied.
    pub fn to_quantized(&self) -> QuantizedMatrix {
        let mut out = self.chunks[0].slice_rows(0, self.chunks[0].rows());
        for chunk in &self.chunks[1..] {
            out.append_rows(chunk);
        }
        out
    }

    /// Reconstructs the full table as f32 (drift-triggered index
    /// rebuilds over a quantized pool; serving never calls this).
    pub fn dequantize(&self) -> Matrix {
        let mut out = Matrix::zeros(self.rows, self.cols);
        let mut row = vec![0.0f32; self.cols];
        for i in 0..self.rows {
            self.dequantize_row_into(i, &mut row);
            out.row_mut(i).copy_from_slice(&row);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Rng64;

    fn random_matrix(rows: usize, cols: usize, seed: u64) -> Matrix {
        let mut rng = Rng64::seed_from_u64(seed);
        Matrix::from_fn(rows, cols, |_, _| rng.normal_with(0.1, 1.3))
    }

    #[test]
    fn chunked_rows_match_the_source_bitwise() {
        // Straddle a chunk boundary: 2.5 chunks.
        let m = random_matrix(2 * COW_CHUNK_ROWS + 512, 7, 3);
        let cow = CowMatrix::from_matrix(&m);
        assert_eq!(cow.chunk_count(), 3);
        for i in [0, 1, COW_CHUNK_ROWS - 1, COW_CHUNK_ROWS, 2 * COW_CHUNK_ROWS + 511] {
            assert_eq!(cow.row(i), m.row(i), "row {i}");
        }
        assert_eq!(cow.to_matrix(), m);
    }

    #[test]
    fn update_rows_clones_only_touched_chunks() {
        let m = random_matrix(3 * COW_CHUNK_ROWS, 5, 9);
        let base = CowMatrix::from_matrix(&m);
        let mut delta = base.clone();
        assert_eq!(delta.shared_chunks_with(&base), 3, "clone shares everything");

        // Touch one row in chunk 0 and one in chunk 2; chunk 1 must stay
        // pointer-shared with the base table.
        let ids = [5u32, (2 * COW_CHUNK_ROWS + 17) as u32];
        let rows = random_matrix(2, 5, 11);
        delta.update_rows(&ids, &rows);
        assert_eq!(delta.shared_chunks_with(&base), 1, "only touched chunks cloned");
        assert_eq!(delta.row(5), rows.row(0));
        assert_eq!(delta.row(2 * COW_CHUNK_ROWS + 17), rows.row(1));
        assert_eq!(base.row(5), m.row(5), "base table unperturbed");

        // The materialized delta equals an eager full copy with the same
        // rows replaced.
        let mut eager = m.clone();
        eager.row_mut(5).copy_from_slice(rows.row(0));
        eager.row_mut(2 * COW_CHUNK_ROWS + 17).copy_from_slice(rows.row(1));
        assert_eq!(delta.to_matrix(), eager);
    }

    #[test]
    fn quant_chunking_preserves_codes_and_dots_bitwise() {
        let m = random_matrix(COW_CHUNK_ROWS + 37, 16, 5);
        let q = QuantizedMatrix::from_matrix(&m);
        let cow = CowQuantMatrix::from_quantized(&q);
        assert_eq!(cow.chunk_count(), 2);
        assert_eq!(cow.to_quantized(), q);

        let mut rng = Rng64::seed_from_u64(77);
        let query: Vec<f32> = (0..16).map(|_| rng.normal()).collect();
        let prep_cow = cow.prepare(&query);
        let prep_src = q.prepare(&query);
        assert_eq!(prep_cow, prep_src, "same anchor, same prepared query");
        for i in [0, COW_CHUNK_ROWS - 1, COW_CHUNK_ROWS, COW_CHUNK_ROWS + 36] {
            assert_eq!(cow.dot_prepared(i, &prep_cow), q.dot_prepared(i, &prep_src), "row {i}");
        }
    }

    #[test]
    fn requantize_rows_is_exact_and_copy_on_write() {
        let m = random_matrix(2 * COW_CHUNK_ROWS, 9, 13);
        let q = QuantizedMatrix::from_matrix(&m);
        let base = CowQuantMatrix::from_quantized(&q);
        let mut delta = base.clone();

        let ids = [3u32, (COW_CHUNK_ROWS + 100) as u32];
        let rows = random_matrix(2, 9, 15);
        delta.requantize_rows(&ids, &rows);
        assert_eq!(delta.shared_chunks_with(&base), 0, "both chunks touched here");

        // Oracle: a frozen-anchor rebuild of the fully updated matrix.
        let mut updated = m.clone();
        updated.row_mut(3).copy_from_slice(rows.row(0));
        updated.row_mut(COW_CHUNK_ROWS + 100).copy_from_slice(rows.row(1));
        let mut oracle = QuantizedMatrix::with_anchor(q.anchor().to_vec());
        for row in updated.iter_rows() {
            oracle.push_row(row);
        }
        assert_eq!(delta.to_quantized(), oracle);
        assert_eq!(base.to_quantized(), q, "base table unperturbed");
    }
}
