//! Dense row-major `f32` matrix kernels.
//!
//! This crate is the lowest substrate of the ATNN reproduction: it plays the
//! role TensorFlow's dense kernels play in the paper's implementation.
//! Everything above it (autograd, layers, models) is expressed in terms of
//! the [`Matrix`] type and the handful of cache-friendly kernels here.
//!
//! Design notes (following the Rust Performance Book guidance):
//! - storage is a single contiguous `Vec<f32>`, row-major, so row views are
//!   plain slices;
//! - every dense matmul variant (nn/tn/nt, fused or not) runs one shared
//!   register-tiled, packed, cache-blocked microkernel (see the `gemm`
//!   module) that stays bit-identical to the naive i-k-j reference;
//! - no operation allocates unless it returns a new matrix; in-place
//!   variants (`*_assign`) are provided for the optimizer hot paths, and
//!   gemm pack buffers are thread-local and reused;
//! - which microkernel flavor runs (scalar / AVX2 / fast-math FMA) is
//!   *backend selection* (see the [`backend`] module): a process default
//!   plus scoped per-thread overrides, gated against one cached
//!   capability probe, with the scalar path as the bit-exact oracle.

pub mod backend;
mod cow;
mod error;
mod gemm;
mod matrix;
mod ops;
pub mod pool;
mod quant;
mod rng;
mod serialize;
mod sparse;
mod sync;

pub use backend::{
    backend_from_env, backend_of, cpu_caps, current_backend, current_backend_kind, process_backend,
    set_process_backend, with_backend, with_backend_opt, Avx2Backend, Backend, BackendKind,
    CpuCaps, FastMathBackend, ScalarBackend, UnknownBackend,
};
pub use cow::{CowMatrix, CowQuantMatrix, COW_CHUNK_ROWS};
pub use error::TensorError;
pub use gemm::{gemm_dispatch_counts, stable_sigmoid, ActKind};
pub use matrix::Matrix;
pub use ops::{cosine, dot};
pub use quant::{dot_i8, dot_i8_scalar, PreparedQuery, QuantizedMatrix};
pub use rng::{Init, Rng64};
pub use serialize::{decode_matrix, encode_matrix};
pub use sparse::SparseRowGrad;
pub use sync::SwapCell;

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, TensorError>;
