//! Backend selection at the tensor boundary: pluggable scalar / AVX2 /
//! fast-math compute behind one capability probe.
//!
//! # Why a trait here
//!
//! Every hot path in the repro — the blocked GEMM, the fused
//! `linear_bias_act` epilogue, the int8 `dot_prepared` kernels, the IVF
//! assignment product — used to hand-route runtime AVX2 through per-file
//! `is_x86_feature_detected!` probes, so precision and vector width were
//! chosen per-rebuild instead of per-deployment. [`Backend`] names that
//! choice once: [`ScalarBackend`] is the bit-identical reference (and stays
//! the test oracle), [`Avx2Backend`] is the runtime-detected wide kernel
//! set that is still bit-identical to scalar, and [`FastMathBackend`]
//! additionally turns on the FMA GEMM microkernel — faster, contracted
//! rounding, tolerance-tested rather than bit-tested.
//!
//! # Selection model
//!
//! Selection is a [`BackendKind`] value, resolved in three layers:
//!
//! 1. a **scoped override** installed by [`with_backend`] on the current
//!    thread (the worker pool forwards it to shard tasks, so a scope
//!    covers parallel matmuls and pooled evaluation);
//! 2. the **process default**, set by [`set_process_backend`] or lazily
//!    from the `ATNN_BACKEND` environment variable;
//! 3. the built-in default, [`BackendKind::Avx2`] — exactly the old
//!    sniff-inline behavior.
//!
//! Kernels read [`current_backend_kind`] and gate it against the cached
//! [`cpu_caps`] probe, so an unsupported request degrades (fast-math →
//! avx2 → scalar) instead of faulting. Binaries that want a *typed* error
//! for an invalid `ATNN_BACKEND` value call [`backend_from_env`] eagerly;
//! the lazy path warns once on stderr and falls back, because a compute
//! default is not worth crashing a serving process over.

use std::cell::Cell;
use std::fmt;
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::OnceLock;

use crate::gemm::ActKind;
use crate::quant::{self, PreparedQuery, QuantizedMatrix};
use crate::{Matrix, Result};

/// Environment variable consulted for the process-default backend.
pub const BACKEND_ENV: &str = "ATNN_BACKEND";

// --- capability probe ------------------------------------------------------

/// What the host CPU can run, probed once per process. This is the single
/// capability check the kernels consult; the per-file
/// `is_x86_feature_detected!` calls it replaced are gone.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CpuCaps {
    /// 256-bit integer/float SIMD (the wide microkernels and int8 dot).
    pub avx2: bool,
    /// Fused multiply-add (the fast-math GEMM microkernel).
    pub fma: bool,
}

/// The cached capability probe (one `is_x86_feature_detected!` pair for
/// the process lifetime; always `false` off x86-64).
pub fn cpu_caps() -> CpuCaps {
    static CAPS: OnceLock<CpuCaps> = OnceLock::new();
    *CAPS.get_or_init(|| {
        #[cfg(target_arch = "x86_64")]
        {
            CpuCaps {
                avx2: std::arch::is_x86_feature_detected!("avx2"),
                fma: std::arch::is_x86_feature_detected!("fma"),
            }
        }
        #[cfg(not(target_arch = "x86_64"))]
        {
            CpuCaps { avx2: false, fma: false }
        }
    })
}

// --- kinds -----------------------------------------------------------------

/// Names one of the built-in compute backends.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BackendKind {
    /// Portable scalar kernels; the bit-exact reference and test oracle.
    Scalar,
    /// Runtime-detected AVX2 kernels, bit-identical to [`Self::Scalar`]
    /// (SIMD only across output columns, never across `k`). The default.
    Avx2,
    /// AVX2 + FMA GEMM microkernel with contracted rounding; toleranced,
    /// not bit-identical. Int8 kernels are exact integer arithmetic and
    /// shared with [`Self::Avx2`].
    FastMath,
}

impl BackendKind {
    /// Every built-in kind, in degradation order (fastest first).
    pub const ALL: [BackendKind; 3] =
        [BackendKind::FastMath, BackendKind::Avx2, BackendKind::Scalar];

    /// The canonical lowercase name (`scalar` / `avx2` / `fastmath`),
    /// accepted back by [`str::parse`] and emitted in `KernelDispatch`
    /// events.
    pub fn name(self) -> &'static str {
        match self {
            BackendKind::Scalar => "scalar",
            BackendKind::Avx2 => "avx2",
            BackendKind::FastMath => "fastmath",
        }
    }

    /// Whether this backend promises bit-identical results to the scalar
    /// oracle (`true` for everything except fast-math).
    pub fn bit_identical(self) -> bool {
        !matches!(self, BackendKind::FastMath)
    }

    /// Resolves the request against [`cpu_caps`]: fast-math needs
    /// AVX2+FMA, avx2 needs AVX2, and each degrades one step when the
    /// host can't run it.
    pub(crate) fn resolve(self) -> MicroArch {
        let caps = cpu_caps();
        match self {
            BackendKind::Scalar => MicroArch::Scalar,
            BackendKind::Avx2 if caps.avx2 => MicroArch::Avx2,
            BackendKind::Avx2 => MicroArch::Scalar,
            BackendKind::FastMath if caps.avx2 && caps.fma => MicroArch::FastMath,
            BackendKind::FastMath if caps.avx2 => MicroArch::Avx2,
            BackendKind::FastMath => MicroArch::Scalar,
        }
    }
}

impl fmt::Display for BackendKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Typed error for an unrecognized backend name (CLI flag or
/// `ATNN_BACKEND` value). Carries the offending input so config layers can
/// surface it verbatim.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnknownBackend(pub String);

impl fmt::Display for UnknownBackend {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "unknown backend {:?} (expected scalar, avx2, or fastmath)", self.0)
    }
}

impl std::error::Error for UnknownBackend {}

impl std::str::FromStr for BackendKind {
    type Err = UnknownBackend;

    fn from_str(s: &str) -> std::result::Result<Self, UnknownBackend> {
        match s {
            "scalar" => Ok(BackendKind::Scalar),
            "avx2" => Ok(BackendKind::Avx2),
            "fastmath" => Ok(BackendKind::FastMath),
            other => Err(UnknownBackend(other.to_string())),
        }
    }
}

/// The microkernel flavor actually run after capability gating — what
/// `gemm.rs`/`quant.rs` dispatch on. Resolved once per kernel entry on the
/// calling thread, so a parallel matmul's shards all use the same flavor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum MicroArch {
    Scalar,
    Avx2,
    FastMath,
}

// --- process default + scoped override -------------------------------------

const KIND_UNSET: u8 = u8::MAX;

/// The process-default kind (`KIND_UNSET` until first read or
/// [`set_process_backend`]).
static PROCESS_DEFAULT: AtomicU8 = AtomicU8::new(KIND_UNSET);

fn kind_from_u8(v: u8) -> BackendKind {
    match v {
        0 => BackendKind::Scalar,
        1 => BackendKind::Avx2,
        _ => BackendKind::FastMath,
    }
}

fn kind_to_u8(kind: BackendKind) -> u8 {
    match kind {
        BackendKind::Scalar => 0,
        BackendKind::Avx2 => 1,
        BackendKind::FastMath => 2,
    }
}

/// Reads `ATNN_BACKEND`, returning `Ok(None)` when unset and a typed
/// [`UnknownBackend`] error for an unparseable value. Binaries call this
/// eagerly at startup so a typo is a config error, not a silent fallback.
pub fn backend_from_env() -> std::result::Result<Option<BackendKind>, UnknownBackend> {
    match std::env::var(BACKEND_ENV) {
        Ok(v) => v.parse().map(Some),
        Err(_) => Ok(None),
    }
}

/// Lazy environment default for processes that never validated the env
/// var: an invalid value warns once on stderr and falls back to the
/// built-in default rather than crashing a compute path.
fn env_default() -> BackendKind {
    static ENV_DEFAULT: OnceLock<BackendKind> = OnceLock::new();
    *ENV_DEFAULT.get_or_init(|| match backend_from_env() {
        Ok(Some(kind)) => kind,
        Ok(None) => BackendKind::Avx2,
        Err(err) => {
            eprintln!("atnn-tensor: {BACKEND_ENV}: {err}; using the avx2 backend");
            BackendKind::Avx2
        }
    })
}

/// The process-default backend (layer 2 of the selection model).
pub fn process_backend() -> BackendKind {
    match PROCESS_DEFAULT.load(Ordering::Relaxed) {
        KIND_UNSET => {
            let kind = env_default();
            // Racy first-read init is fine: every racer computes the same
            // value (env_default is a OnceLock).
            PROCESS_DEFAULT.store(kind_to_u8(kind), Ordering::Relaxed);
            kind
        }
        v => kind_from_u8(v),
    }
}

/// Sets the process-default backend (e.g. from `atnn_serve --backend`).
/// Threads inside a [`with_backend`] scope keep their override.
pub fn set_process_backend(kind: BackendKind) {
    PROCESS_DEFAULT.store(kind_to_u8(kind), Ordering::Relaxed);
}

thread_local! {
    /// Scoped per-thread override (layer 1); forwarded to pool workers per
    /// shard task so a scope covers parallel kernels.
    static SCOPED: Cell<Option<BackendKind>> = const { Cell::new(None) };
}

/// The backend kind kernels on this thread will use right now.
pub fn current_backend_kind() -> BackendKind {
    SCOPED.with(|s| s.get()).unwrap_or_else(process_backend)
}

/// The [`Backend`] implementation for [`current_backend_kind`].
pub fn current_backend() -> &'static dyn Backend {
    backend_of(current_backend_kind())
}

/// The static [`Backend`] implementation for a kind.
pub fn backend_of(kind: BackendKind) -> &'static dyn Backend {
    match kind {
        BackendKind::Scalar => &ScalarBackend,
        BackendKind::Avx2 => &Avx2Backend,
        BackendKind::FastMath => &FastMathBackend,
    }
}

/// Runs `f` with `kind` as this thread's backend, restoring the previous
/// selection on exit (drop-guarded, so panics restore too). Mirrors
/// `pool::with_threads`; nests.
pub fn with_backend<R>(kind: BackendKind, f: impl FnOnce() -> R) -> R {
    struct Restore(Option<BackendKind>);
    impl Drop for Restore {
        fn drop(&mut self) {
            SCOPED.with(|s| s.set(self.0));
        }
    }
    let _restore = Restore(SCOPED.with(|s| s.replace(Some(kind))));
    f()
}

/// [`with_backend`] for optional config-level overrides: `None` runs `f`
/// under the ambient selection unchanged.
pub fn with_backend_opt<R>(kind: Option<BackendKind>, f: impl FnOnce() -> R) -> R {
    match kind {
        Some(k) => with_backend(k, f),
        None => f(),
    }
}

/// The scoped override to forward to a pool worker (captured at task
/// submission).
pub(crate) fn scoped_override() -> Option<BackendKind> {
    SCOPED.with(|s| s.get())
}

/// Installs a forwarded override on a pool worker, returning the previous
/// value for restoration.
pub(crate) fn set_scoped_override(kind: Option<BackendKind>) -> Option<BackendKind> {
    SCOPED.with(|s| s.replace(kind))
}

/// The capability-gated microkernel flavor for the current selection;
/// kernel entry points resolve this once on the calling thread.
pub(crate) fn current_arch() -> MicroArch {
    current_backend_kind().resolve()
}

// --- the trait -------------------------------------------------------------

/// The kernel surface the codebase dispatches on, bound to one backend.
///
/// Every method defaults to scoping the kernel with [`with_backend`] and
/// calling the shared (validated) entry point, so the three built-in
/// backends share one arithmetic implementation per kernel and differ only
/// in the microkernel flavor the scope resolves to. Hot paths that already
/// hold a `Matrix` keep calling the inherent methods — those read the same
/// thread-local selection — while code that wants compute as a *value*
/// (config plumbing, benches, parity tests) passes `&dyn Backend`.
pub trait Backend: Send + Sync + fmt::Debug {
    /// Which built-in kind this backend runs as.
    fn kind(&self) -> BackendKind;

    /// Canonical name ([`BackendKind::name`]).
    fn name(&self) -> &'static str {
        self.kind().name()
    }

    /// Whether results are bit-identical to the scalar oracle.
    fn bit_identical(&self) -> bool {
        self.kind().bit_identical()
    }

    /// `a @ b` (see [`Matrix::matmul`]).
    fn matmul(&self, a: &Matrix, b: &Matrix) -> Result<Matrix> {
        with_backend(self.kind(), || a.matmul(b))
    }

    /// `a @ b` into a preallocated output (see [`Matrix::matmul_into`]).
    fn matmul_into(&self, a: &Matrix, b: &Matrix, out: &mut Matrix) -> Result<()> {
        with_backend(self.kind(), || a.matmul_into(b, out))
    }

    /// `aᵀ @ b` (see [`Matrix::matmul_tn`]).
    fn matmul_tn(&self, a: &Matrix, b: &Matrix) -> Result<Matrix> {
        with_backend(self.kind(), || a.matmul_tn(b))
    }

    /// `aᵀ @ b` into a preallocated output.
    fn matmul_tn_into(&self, a: &Matrix, b: &Matrix, out: &mut Matrix) -> Result<()> {
        with_backend(self.kind(), || a.matmul_tn_into(b, out))
    }

    /// `a @ bᵀ` (see [`Matrix::matmul_nt`]).
    fn matmul_nt(&self, a: &Matrix, b: &Matrix) -> Result<Matrix> {
        with_backend(self.kind(), || a.matmul_nt(b))
    }

    /// `a @ bᵀ` into a preallocated output.
    fn matmul_nt_into(&self, a: &Matrix, b: &Matrix, out: &mut Matrix) -> Result<()> {
        with_backend(self.kind(), || a.matmul_nt_into(b, out))
    }

    /// Fused `act(a @ w + bias)` (see [`Matrix::linear_bias_act`]).
    fn linear_bias_act(
        &self,
        a: &Matrix,
        w: &Matrix,
        bias: Option<&Matrix>,
        act: ActKind,
    ) -> Result<Matrix> {
        with_backend(self.kind(), || a.linear_bias_act(w, bias, act))
    }

    /// Fused `act(a @ w + bias)` into a preallocated output.
    fn linear_bias_act_into(
        &self,
        a: &Matrix,
        w: &Matrix,
        bias: Option<&Matrix>,
        act: ActKind,
        out: &mut Matrix,
    ) -> Result<()> {
        with_backend(self.kind(), || a.linear_bias_act_into(w, bias, act, out))
    }

    /// Exact int8 dot product (see [`quant::dot_i8`]); integer arithmetic,
    /// bit-identical on every backend.
    fn dot_i8(&self, a: &[i8], b: &[i8]) -> i32 {
        with_backend(self.kind(), || quant::dot_i8(a, b))
    }

    /// Two-level quantized dot against a prepared query (see
    /// [`QuantizedMatrix::dot_prepared`]).
    fn dot_prepared(&self, table: &QuantizedMatrix, row: usize, query: &PreparedQuery) -> f32 {
        with_backend(self.kind(), || table.dot_prepared(row, query))
    }
}

/// Portable scalar kernels: the bit-exact reference and test oracle.
#[derive(Debug, Clone, Copy, Default)]
pub struct ScalarBackend;

impl Backend for ScalarBackend {
    fn kind(&self) -> BackendKind {
        BackendKind::Scalar
    }
}

/// Runtime-detected AVX2 kernels, bit-identical to [`ScalarBackend`].
#[derive(Debug, Clone, Copy, Default)]
pub struct Avx2Backend;

impl Backend for Avx2Backend {
    fn kind(&self) -> BackendKind {
        BackendKind::Avx2
    }
}

/// AVX2 + FMA GEMM with contracted rounding; toleranced, not bit-tested.
#[derive(Debug, Clone, Copy, Default)]
pub struct FastMathBackend;

impl Backend for FastMathBackend {
    fn kind(&self) -> BackendKind {
        BackendKind::FastMath
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_round_trip_through_parse() {
        for kind in BackendKind::ALL {
            assert_eq!(kind.name().parse::<BackendKind>(), Ok(kind));
        }
    }

    #[test]
    fn parse_rejects_unknown_names_with_typed_error() {
        let err = "sse9".parse::<BackendKind>().unwrap_err();
        assert_eq!(err, UnknownBackend("sse9".to_string()));
        assert!(err.to_string().contains("sse9"));
        assert!("Scalar".parse::<BackendKind>().is_err(), "names are case-sensitive");
    }

    #[test]
    fn with_backend_scopes_and_restores() {
        let ambient = current_backend_kind();
        let inner = with_backend(BackendKind::Scalar, || {
            let nested = with_backend(BackendKind::FastMath, current_backend_kind);
            assert_eq!(nested, BackendKind::FastMath);
            current_backend_kind()
        });
        assert_eq!(inner, BackendKind::Scalar);
        assert_eq!(current_backend_kind(), ambient, "scope must restore on exit");
    }

    #[test]
    fn scope_restores_across_panics() {
        let ambient = current_backend_kind();
        let caught = std::panic::catch_unwind(|| {
            with_backend(BackendKind::Scalar, || panic!("boom"));
        });
        assert!(caught.is_err());
        assert_eq!(current_backend_kind(), ambient);
    }

    #[test]
    fn resolve_degrades_with_capabilities() {
        let caps = cpu_caps();
        assert_eq!(BackendKind::Scalar.resolve(), MicroArch::Scalar);
        if caps.avx2 {
            assert_eq!(BackendKind::Avx2.resolve(), MicroArch::Avx2);
        } else {
            assert_eq!(BackendKind::Avx2.resolve(), MicroArch::Scalar);
        }
        if caps.avx2 && caps.fma {
            assert_eq!(BackendKind::FastMath.resolve(), MicroArch::FastMath);
        }
    }

    #[test]
    fn backend_objects_report_their_kind() {
        assert_eq!(backend_of(BackendKind::Scalar).name(), "scalar");
        assert!(backend_of(BackendKind::Scalar).bit_identical());
        assert!(backend_of(BackendKind::Avx2).bit_identical());
        assert!(!backend_of(BackendKind::FastMath).bit_identical());
        assert_eq!(current_backend().kind(), current_backend_kind());
    }
}
