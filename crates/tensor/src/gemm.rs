//! The register-tiled, cache-blocked GEMM microkernel behind every dense
//! matmul variant, plus the fused bias+activation epilogue.
//!
//! # One kernel, three layouts
//!
//! `matmul` (nn), `matmul_tn` (`aᵀ @ b`) and `matmul_nt` (`a @ bᵀ`) all
//! funnel into [`gemm_band`]; the transpose variants differ only in how
//! operands are *packed* ([`Src::T`] reads the source transposed), so the
//! arithmetic — and therefore the result bits — is shared. The row-sharded
//! parallel dispatch in `ops.rs` composes on top: each shard runs this
//! kernel over its band of output rows.
//!
//! # Structure
//!
//! The tiled path is the classic three-level blocking scheme (Goto-style):
//!
//! - `jc` walks the output columns in [`NC`]-wide panels;
//! - `pc` walks the inner dimension in [`KC`]-deep slabs; each `(pc, jc)`
//!   slab of `b` is packed once into [`NR`]-column strips;
//! - `ic` walks the output rows in [`MC`]-tall blocks; each `(ic, pc)`
//!   block of `a` is packed into [`MR`]-row strips;
//! - the innermost [`microkernel`] multiply-accumulates one `MR x NR`
//!   register tile over the packed strips, `k` strictly ascending.
//!
//! Edge tiles (when `m % MR != 0` or `n % NR != 0`) run the same
//! microkernel over zero-padded strips into a scratch tile; only the valid
//! elements are copied back, so the rim never pollutes the output.
//!
//! # Why tiling preserves bit-identity
//!
//! The naive reference kernel ([`Matrix::matmul_naive`]) accumulates each
//! output element over `k` ascending in a single `f32` accumulator,
//! skipping `a`-zeros. The tiled kernel keeps exactly one accumulator per
//! output element (a register-tile lane), visits `k` in the same ascending
//! order (`pc` slabs ascending, `p` ascending within a slab; the partial
//! sum is parked in the output between slabs, which rounds nothing), and
//! does **not** reorder or split any element's sum — SIMD here vectorizes
//! across *output columns*, never across `k`. Skipping an `av == 0.0`
//! product is itself bitwise-neutral: the accumulator can never be `-0.0`
//! (a round-to-nearest sum only produces `-0.0` from two `-0.0` terms, and
//! it starts at `+0.0`), so adding the `±0.0` product changes no bits.
//! Hence tiled == naive for all finite inputs; the only divergence is
//! `av == 0.0` against a non-finite `bv` (naive skips the resulting NaN).
//! Multi-accumulator k-unrolling is deliberately forbidden in this module
//! — everywhere except the opt-in fast-math microkernel below, which is
//! toleranced rather than bit-tested.
//!
//! # Backend dispatch
//!
//! Which microkernel runs is a [`MicroArch`] resolved by backend selection
//! (`backend::current_arch()`, the scoped/process [`BackendKind`] gated
//! against the one cached [`crate::backend::cpu_caps`] probe) on the
//! calling thread, *before* any pool fork — so every shard of a parallel
//! matmul uses the same flavor:
//!
//! - **Scalar** runs [`microkernel_body`] as compiled for the baseline
//!   target.
//! - **Avx2** runs the same Rust source compiled under
//!   `#[target_feature(enable = "avx2")]`: identical per-lane `vmulps` +
//!   `vaddps` semantics (rustc never contracts mul+add into FMA) — only
//!   the vector width across output columns widens, which the per-element
//!   summation order does not depend on. Bit-identical to scalar.
//! - **FastMath** runs [`microkernel_fma`]: explicit `vfmaddps` with a
//!   two-way k-unroll into dual accumulator sets. Each product rounds once
//!   instead of twice and the k-sum is split in two, so results carry a
//!   relative error of a few ULP versus the oracle — tolerance-tested, and
//!   never selected unless asked for. Still *deterministic*: each output
//!   element's value is a pure function of its `k` sequence, so parallel
//!   row-sharding stays bitwise-reproducible run-to-run.
//!
//! The small/skinny path below the tiled threshold is scalar for every
//! backend (exact results are trivially within any tolerance).
//!
//! The fused epilogue is applied once per element after its full k-sum, so
//! `linear_bias_act` is bit-identical to matmul → bias add → activation as
//! separate passes (intermediate stores round nothing).

use std::cell::RefCell;

use atnn_obs::Counter;

#[allow(unused_imports)] // referenced by the module docs
use crate::backend::BackendKind;
use crate::backend::MicroArch;
use crate::Matrix;

/// Register-tile height (output rows per microkernel call).
pub(crate) const MR: usize = 4;
/// Register-tile width (output columns per microkernel call); `MR * NR`
/// accumulators fit the baseline-x86-64 SSE2 register file.
pub(crate) const NR: usize = 8;
/// k-slab depth: one packed `KC x NR` strip of `b` stays L1-resident
/// across a whole column of micro-tiles.
pub(crate) const KC: usize = 256;
/// Row-block height (multiple of `MR`): the packed `MC x KC` block of `a`
/// targets L2.
pub(crate) const MC: usize = 128;
/// Column-panel width (multiple of `NR`): the packed `KC x NC` panel of
/// `b` targets L2/L3.
pub(crate) const NC: usize = 256;
/// Below this multiply-add volume (`m * k * n`) the packing overhead
/// outweighs the tiled kernel; the scalar small path runs instead.
pub(crate) const SMALL_GEMM_WORK: usize = 32 * 32 * 32;

// --- kernel-dispatch telemetry -------------------------------------------
// Relaxed counters, one `fetch_add` per gemm call (edge tiles are summed
// locally first). Surfaced as an `Event::KernelDispatch` snapshot by the
// trainer and via `Matrix`-level stats so kernel selection is observable
// in the JSONL event stream.

/// Band-level gemm calls taking the register-tiled path.
static TILED_CALLS: Counter = Counter::new();
/// Band-level gemm calls taking the scalar small path (tiny/skinny shapes).
static SMALL_CALLS: Counter = Counter::new();
/// Zero-padded rim micro-tiles executed by the tiled path.
static EDGE_TILES: Counter = Counter::new();
/// Matmul entry points that forked across the worker pool (tasks > 1).
static PARALLEL_DISPATCHES: Counter = Counter::new();

/// Cumulative kernel-dispatch counts since process start:
/// `(tiled_calls, small_calls, edge_tiles, parallel_dispatches)`.
pub fn gemm_dispatch_counts() -> (u64, u64, u64, u64) {
    (TILED_CALLS.get(), SMALL_CALLS.get(), EDGE_TILES.get(), PARALLEL_DISPATCHES.get())
}

/// Records one pool-forked matmul dispatch (called from `ops.rs`).
pub(crate) fn note_parallel_dispatch() {
    PARALLEL_DISPATCHES.incr();
}

/// Numerically stable logistic function `1 / (1 + e^{-z})`.
///
/// The two-branch form never exponentiates a positive argument, so it is
/// finite for every input. This is the *canonical* sigmoid: the autograd
/// `Sigmoid`/`BceWithLogits` nodes and the fused [`ActKind::Sigmoid`]
/// epilogue all call it, which is what makes fused and unfused forward
/// passes bit-identical.
#[inline]
pub fn stable_sigmoid(z: f32) -> f32 {
    if z >= 0.0 {
        1.0 / (1.0 + (-z).exp())
    } else {
        let e = z.exp();
        e / (1.0 + e)
    }
}

/// Elementwise activation applied by the fused epilogue.
///
/// Each variant reproduces the corresponding autograd node's forward map
/// exactly (same expression, same rounding), so fusing the activation into
/// the matmul sweep changes no bits.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ActKind {
    /// No nonlinearity (logits / embeddings).
    Identity,
    /// Rectifier `max(x, 0)`.
    Relu,
    /// Leaky rectifier: `alpha * x` for negative inputs.
    LeakyRelu(f32),
    /// Hyperbolic tangent.
    Tanh,
    /// Logistic sigmoid ([`stable_sigmoid`]).
    Sigmoid,
}

impl ActKind {
    /// Applies the activation to one value.
    #[inline]
    pub fn apply(self, v: f32) -> f32 {
        match self {
            ActKind::Identity => v,
            ActKind::Relu => v.max(0.0),
            ActKind::LeakyRelu(alpha) => {
                if v > 0.0 {
                    v
                } else {
                    alpha * v
                }
            }
            ActKind::Tanh => v.tanh(),
            ActKind::Sigmoid => stable_sigmoid(v),
        }
    }
}

/// Optional bias + activation applied to each output element once, after
/// its complete k-sum. `bias` spans the full output width `n`.
#[derive(Clone, Copy)]
pub(crate) struct Epilogue<'a> {
    pub bias: Option<&'a [f32]>,
    pub act: ActKind,
}

impl Epilogue<'_> {
    /// The do-nothing epilogue used by the plain matmul entry points.
    pub const NONE: Epilogue<'static> = Epilogue { bias: None, act: ActKind::Identity };

    #[inline]
    fn is_noop(&self) -> bool {
        self.bias.is_none() && self.act == ActKind::Identity
    }
}

/// How an operand is read: `N` as stored, `T` transposed. Packing absorbs
/// the transpose, so `matmul_tn`/`matmul_nt` never materialize one.
#[derive(Clone, Copy)]
pub(crate) enum Src<'a> {
    N(&'a Matrix),
    T(&'a Matrix),
}

impl Src<'_> {
    /// Logical element `(r, c)` (bounds-checked by the underlying matrix).
    #[inline]
    fn at(&self, r: usize, c: usize) -> f32 {
        match self {
            Src::N(m) => m.get(r, c),
            Src::T(m) => m.get(c, r),
        }
    }
}

/// Computes output rows `[row0, row0 + band.len() / n)` of
/// `act(A @ B + bias)` into `band`, where `A` is `m x k` and `B` is
/// `k x n` *logically* (transposes absorbed by [`Src`]). `band` must
/// arrive zeroed; `n > 0` is the caller's invariant (shard_rows skips
/// empty outputs). `arch` is the capability-gated microkernel flavor the
/// caller resolved from backend selection (uniform across a parallel
/// dispatch's shards).
#[allow(clippy::too_many_arguments)]
pub(crate) fn gemm_band(
    a: Src,
    b: Src,
    k: usize,
    row0: usize,
    band: &mut [f32],
    n: usize,
    epi: &Epilogue,
    arch: MicroArch,
) {
    let m = band.len() / n;
    if m == 0 {
        return;
    }
    if k == 0 {
        // No products: the output is act(0 + bias) everywhere.
        epilogue_sweep(band, n, epi);
        return;
    }
    let work = m * k * n;
    // Skinny shapes (single output row/column) and tiny products can't
    // amortize the pack; `m == 1` is the serve single-item path and
    // `n == 1` the cross-net `x_l @ w` column product.
    if m == 1 || n == 1 || work < SMALL_GEMM_WORK {
        SMALL_CALLS.incr();
        gemm_small(a, b, k, row0, band, n);
        epilogue_sweep(band, n, epi);
    } else {
        TILED_CALLS.incr();
        gemm_tiled(a, b, k, row0, band, n, epi, arch);
    }
}

/// Applies `act(v + bias)` over a full band (used by the small path and
/// the `k == 0` degenerate case; the tiled path fuses this into its store).
fn epilogue_sweep(band: &mut [f32], n: usize, epi: &Epilogue) {
    if epi.is_noop() {
        return;
    }
    for row in band.chunks_exact_mut(n) {
        match epi.bias {
            Some(bias) => {
                for (o, &bv) in row.iter_mut().zip(bias) {
                    *o = epi.act.apply(*o + bv);
                }
            }
            None => {
                for o in row.iter_mut() {
                    *o = epi.act.apply(*o);
                }
            }
        }
    }
}

/// Scalar fallback: per output element one accumulator, `k` ascending,
/// `a`-zero skip — the naive reference order, specialized per layout so
/// reads stay contiguous where the storage allows.
fn gemm_small(a: Src, b: Src, k: usize, row0: usize, band: &mut [f32], n: usize) {
    let rows = band.len() / n;
    match (a, b) {
        (Src::N(am), Src::N(bm)) => {
            // i-k-j: stream one `b` row and one output row per step.
            for i in 0..rows {
                let a_row = &am.row(row0 + i)[..k];
                let out_row = &mut band[i * n..(i + 1) * n];
                for (p, &av) in a_row.iter().enumerate() {
                    if av == 0.0 {
                        continue;
                    }
                    for (o, &bv) in out_row.iter_mut().zip(bm.row(p)) {
                        *o += av * bv;
                    }
                }
            }
        }
        (Src::T(am), Src::N(bm)) => {
            // p-outer: both reads row-contiguous; per element still
            // p-ascending (the old matmul_tn_band order).
            for p in 0..k {
                let a_seg = &am.row(p)[row0..row0 + rows];
                let b_row = bm.row(p);
                for (i, &av) in a_seg.iter().enumerate() {
                    if av == 0.0 {
                        continue;
                    }
                    for (o, &bv) in band[i * n..(i + 1) * n].iter_mut().zip(b_row) {
                        *o += av * bv;
                    }
                }
            }
        }
        (Src::N(am), Src::T(bm)) => {
            // Row-by-row dot products; both reads contiguous.
            for i in 0..rows {
                let a_row = &am.row(row0 + i)[..k];
                for (j, o) in band[i * n..(i + 1) * n].iter_mut().enumerate() {
                    let mut acc = *o;
                    for (&av, &bv) in a_row.iter().zip(bm.row(j)) {
                        if av == 0.0 {
                            continue;
                        }
                        acc += av * bv;
                    }
                    *o = acc;
                }
            }
        }
        (a, b) => {
            // T/T never occurs today; keep a correct generic path anyway.
            for i in 0..rows {
                let out_row = &mut band[i * n..(i + 1) * n];
                for p in 0..k {
                    let av = a.at(row0 + i, p);
                    if av == 0.0 {
                        continue;
                    }
                    for (j, o) in out_row.iter_mut().enumerate() {
                        *o += av * b.at(p, j);
                    }
                }
            }
        }
    }
}

thread_local! {
    /// Per-thread pack buffers (`MC*KC` for `a`, `KC*NC` for `b`),
    /// allocated once and reused across every gemm on this thread — pool
    /// workers and the main thread each keep their own, so the steady-state
    /// training step allocates nothing here.
    static PACK_BUFS: RefCell<(Vec<f32>, Vec<f32>)> = const { RefCell::new((Vec::new(), Vec::new())) };
}

/// The blocked/tiled path. See the module docs for the loop structure.
#[allow(clippy::too_many_arguments)]
fn gemm_tiled(
    a: Src,
    b: Src,
    k: usize,
    row0: usize,
    band: &mut [f32],
    n: usize,
    epi: &Epilogue,
    arch: MicroArch,
) {
    let m = band.len() / n;
    let mut edge_tiles = 0u64;
    PACK_BUFS.with(|cell| {
        let (apack, bpack) = &mut *cell.borrow_mut();
        if apack.is_empty() {
            apack.resize(MC * KC, 0.0);
            bpack.resize(KC * NC, 0.0);
        }
        for jc in (0..n).step_by(NC) {
            let nc = NC.min(n - jc);
            let mut p0 = 0;
            while p0 < k {
                let kc = KC.min(k - p0);
                let last_k = p0 + kc == k;
                pack_b(b, p0, kc, jc, nc, bpack);
                for ic in (0..m).step_by(MC) {
                    let mc = MC.min(m - ic);
                    pack_a(a, row0 + ic, mc, p0, kc, apack);
                    for jr in (0..nc).step_by(NR) {
                        let nr = NR.min(nc - jr);
                        let bpanel = &bpack[(jr / NR) * kc * NR..][..kc * NR];
                        for ir in (0..mc).step_by(MR) {
                            let mr = MR.min(mc - ir);
                            let apanel = &apack[(ir / MR) * kc * MR..][..kc * MR];
                            if mr < MR || nr < NR {
                                edge_tiles += 1;
                            }
                            // Seed the register tile with the partial sums
                            // parked in the output by earlier k-slabs
                            // (zeros on the first slab); padded lanes start
                            // at 0 and are never stored back.
                            let mut acc = [[0.0f32; NR]; MR];
                            for (i, row) in acc.iter_mut().enumerate().take(mr) {
                                let off = (ic + ir + i) * n + jc + jr;
                                row[..nr].copy_from_slice(&band[off..off + nr]);
                            }
                            microkernel(apanel, bpanel, &mut acc, arch);
                            for (i, row) in acc.iter().enumerate().take(mr) {
                                let off = (ic + ir + i) * n + jc + jr;
                                let out = &mut band[off..off + nr];
                                if last_k && !epi.is_noop() {
                                    for (j, o) in out.iter_mut().enumerate() {
                                        let mut v = row[j];
                                        if let Some(bias) = epi.bias {
                                            v += bias[jc + jr + j];
                                        }
                                        *o = epi.act.apply(v);
                                    }
                                } else {
                                    out.copy_from_slice(&row[..nr]);
                                }
                            }
                        }
                    }
                }
                p0 += kc;
            }
        }
    });
    if edge_tiles > 0 {
        EDGE_TILES.add(edge_tiles);
    }
}

/// One `MR x NR` register tile: for each `p` (ascending), broadcast `MR`
/// packed `a` values against `NR` packed `b` values. The `j` loop is what
/// LLVM vectorizes — lanes are distinct output elements, so SIMD never
/// touches the per-element summation order. The fixed-size array reborrows
/// (`try_into`) give every loop a constant trip count so the accumulator
/// tile stays register-resident.
#[inline(always)]
fn microkernel_body(apanel: &[f32], bpanel: &[f32], acc: &mut [[f32; NR]; MR]) {
    for (ap, bp) in apanel.chunks_exact(MR).zip(bpanel.chunks_exact(NR)) {
        let ap: &[f32; MR] = ap.try_into().unwrap();
        let bp: &[f32; NR] = bp.try_into().unwrap();
        for (row, &av) in acc.iter_mut().zip(ap) {
            for (c, &bv) in row.iter_mut().zip(bp) {
                *c += av * bv;
            }
        }
    }
}

/// AVX2-compiled clone of [`microkernel_body`]. Same Rust source, so the
/// per-lane arithmetic is identical (`vmulps` + `vaddps`; rustc never
/// contracts mul+add into FMA) — only the vector *width* across output
/// columns changes, which bit-identity does not depend on.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn microkernel_avx2(apanel: &[f32], bpanel: &[f32], acc: &mut [[f32; NR]; MR]) {
    microkernel_body(apanel, bpanel, acc);
}

/// The fast-math microkernel: explicit FMA with a two-way k-unroll.
///
/// Each of the `MR` register-tile rows is one `__m256` (`NR == 8`). Even
/// `p` accumulates into `c*`, odd `p` into `d*`; the two sets are summed
/// once at the end of the panel. Relative to the oracle this (a) skips the
/// intermediate rounding of `mul` then `add` — FMA rounds once — and
/// (b) splits each element's k-sum into two interleaved partial sums, so
/// results differ by a few ULP and this kernel is tolerance-tested, never
/// bit-tested (see the module docs). It is still a pure function of the
/// packed `k` sequence per element, hence deterministic and unaffected by
/// row-sharded parallelism.
///
/// The dual accumulators are what buy the speed: back-to-back FMAs into
/// one register chain would serialize on the ~4-cycle FMA latency, while
/// two chains keep both FMA ports busy.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2", enable = "fma")]
unsafe fn microkernel_fma(apanel: &[f32], bpanel: &[f32], acc: &mut [[f32; NR]; MR]) {
    use std::arch::x86_64::*;
    // The kernel spells out MR rows of one __m256 each.
    const { assert!(MR == 4 && NR == 8) };
    let kc = bpanel.len() / NR;
    let ap = apanel.as_ptr();
    let bp = bpanel.as_ptr();
    let mut c0 = _mm256_loadu_ps(acc[0].as_ptr());
    let mut c1 = _mm256_loadu_ps(acc[1].as_ptr());
    let mut c2 = _mm256_loadu_ps(acc[2].as_ptr());
    let mut c3 = _mm256_loadu_ps(acc[3].as_ptr());
    let mut d0 = _mm256_setzero_ps();
    let mut d1 = _mm256_setzero_ps();
    let mut d2 = _mm256_setzero_ps();
    let mut d3 = _mm256_setzero_ps();
    let mut p = 0;
    while p + 2 <= kc {
        let b0 = _mm256_loadu_ps(bp.add(p * NR));
        let a0 = ap.add(p * MR);
        c0 = _mm256_fmadd_ps(_mm256_broadcast_ss(&*a0), b0, c0);
        c1 = _mm256_fmadd_ps(_mm256_broadcast_ss(&*a0.add(1)), b0, c1);
        c2 = _mm256_fmadd_ps(_mm256_broadcast_ss(&*a0.add(2)), b0, c2);
        c3 = _mm256_fmadd_ps(_mm256_broadcast_ss(&*a0.add(3)), b0, c3);
        let b1 = _mm256_loadu_ps(bp.add((p + 1) * NR));
        let a1 = ap.add((p + 1) * MR);
        d0 = _mm256_fmadd_ps(_mm256_broadcast_ss(&*a1), b1, d0);
        d1 = _mm256_fmadd_ps(_mm256_broadcast_ss(&*a1.add(1)), b1, d1);
        d2 = _mm256_fmadd_ps(_mm256_broadcast_ss(&*a1.add(2)), b1, d2);
        d3 = _mm256_fmadd_ps(_mm256_broadcast_ss(&*a1.add(3)), b1, d3);
        p += 2;
    }
    if p < kc {
        let b0 = _mm256_loadu_ps(bp.add(p * NR));
        let a0 = ap.add(p * MR);
        c0 = _mm256_fmadd_ps(_mm256_broadcast_ss(&*a0), b0, c0);
        c1 = _mm256_fmadd_ps(_mm256_broadcast_ss(&*a0.add(1)), b0, c1);
        c2 = _mm256_fmadd_ps(_mm256_broadcast_ss(&*a0.add(2)), b0, c2);
        c3 = _mm256_fmadd_ps(_mm256_broadcast_ss(&*a0.add(3)), b0, c3);
    }
    _mm256_storeu_ps(acc[0].as_mut_ptr(), _mm256_add_ps(c0, d0));
    _mm256_storeu_ps(acc[1].as_mut_ptr(), _mm256_add_ps(c1, d1));
    _mm256_storeu_ps(acc[2].as_mut_ptr(), _mm256_add_ps(c2, d2));
    _mm256_storeu_ps(acc[3].as_mut_ptr(), _mm256_add_ps(c3, d3));
}

/// Dispatches one micro-tile to the kernel the resolved [`MicroArch`]
/// names. The arch arrives capability-gated (`BackendKind::resolve`), so
/// the wide arms are unreachable on hosts without the features.
#[inline]
fn microkernel(apanel: &[f32], bpanel: &[f32], acc: &mut [[f32; NR]; MR], arch: MicroArch) {
    #[cfg(target_arch = "x86_64")]
    match arch {
        // SAFETY: `MicroArch::Avx2` only resolves when the cached
        // capability probe reported AVX2.
        MicroArch::Avx2 => return unsafe { microkernel_avx2(apanel, bpanel, acc) },
        // SAFETY: `MicroArch::FastMath` only resolves when the probe
        // reported both AVX2 and FMA.
        MicroArch::FastMath => return unsafe { microkernel_fma(apanel, bpanel, acc) },
        MicroArch::Scalar => {}
    }
    let _ = arch;
    microkernel_body(apanel, bpanel, acc);
}

/// Packs logical rows `[r0, r0 + mc)` x k-slab `[p0, p0 + kc)` of `a` into
/// `MR`-row strips: strip `s` holds `a[r0 + s*MR + i][p0 + p]` at
/// `s*kc*MR + p*MR + i`, rows past `mc` zero-filled.
fn pack_a(a: Src, r0: usize, mc: usize, p0: usize, kc: usize, buf: &mut [f32]) {
    let strips = mc.div_ceil(MR);
    for s in 0..strips {
        let strip = &mut buf[s * kc * MR..(s + 1) * kc * MR];
        let rows = MR.min(mc - s * MR);
        match a {
            Src::N(m) => {
                for i in 0..MR {
                    if i < rows {
                        let src = &m.row(r0 + s * MR + i)[p0..p0 + kc];
                        for (p, &v) in src.iter().enumerate() {
                            strip[p * MR + i] = v;
                        }
                    } else {
                        for p in 0..kc {
                            strip[p * MR + i] = 0.0;
                        }
                    }
                }
            }
            Src::T(m) => {
                // Logical a[r][p] = m[p][r]: read m's rows contiguously.
                for (p, dst) in strip.chunks_exact_mut(MR).enumerate() {
                    let src = &m.row(p0 + p)[r0 + s * MR..r0 + s * MR + rows];
                    dst[..rows].copy_from_slice(src);
                    for d in &mut dst[rows..] {
                        *d = 0.0;
                    }
                }
            }
        }
    }
}

/// Packs k-slab `[p0, p0 + kc)` x logical columns `[j0, j0 + nc)` of `b`
/// into `NR`-column strips: strip `t` holds `b[p0 + p][j0 + t*NR + j]` at
/// `t*kc*NR + p*NR + j`, columns past `nc` zero-filled.
fn pack_b(b: Src, p0: usize, kc: usize, j0: usize, nc: usize, buf: &mut [f32]) {
    let strips = nc.div_ceil(NR);
    for t in 0..strips {
        let strip = &mut buf[t * kc * NR..(t + 1) * kc * NR];
        let cols = NR.min(nc - t * NR);
        match b {
            Src::N(m) => {
                for (p, dst) in strip.chunks_exact_mut(NR).enumerate() {
                    let start = j0 + t * NR;
                    let src = &m.row(p0 + p)[start..start + cols];
                    dst[..cols].copy_from_slice(src);
                    for d in &mut dst[cols..] {
                        *d = 0.0;
                    }
                }
            }
            Src::T(m) => {
                // Logical b[p][j] = m[j][p]: read m's rows contiguously.
                for j in 0..NR {
                    if j < cols {
                        let src = &m.row(j0 + t * NR + j)[p0..p0 + kc];
                        for (p, &v) in src.iter().enumerate() {
                            strip[p * NR + j] = v;
                        }
                    } else {
                        for p in 0..kc {
                            strip[p * NR + j] = 0.0;
                        }
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The widest *bit-identical* flavor the host supports — what the
    /// oracle-equality tests below run, independent of any ambient
    /// backend selection (they assert exactness, which fast-math waives).
    fn exact_arch() -> MicroArch {
        BackendKind::Avx2.resolve()
    }

    fn test_matrix(rows: usize, cols: usize, seed: u64) -> Matrix {
        Matrix::from_fn(rows, cols, |i, j| {
            let mut z = seed
                ^ (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)
                ^ (j as u64).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z ^= z >> 31;
            if z.is_multiple_of(8) {
                0.0
            } else {
                ((z >> 40) & 0xFF_FFFF) as f32 / (1u64 << 23) as f32 - 1.0
            }
        })
    }

    /// The tiled path must match the naive reference bit-for-bit on shapes
    /// that exercise full tiles, rims, and multiple k-slabs.
    #[test]
    fn tiled_matches_naive_across_blocking_boundaries() {
        for &(m, k, n) in &[
            (32, 32, 32),             // exactly at the small/tiled edge
            (33, 37, 41),             // rim in every dimension
            (MC + 3, KC + 5, NC + 7), // multiple outer blocks
            (MR * 5, KC * 2, NR * 6), // exact tile multiples, 2 k-slabs
            (128, 1, 128),            // k=1 (no reuse at all)
        ] {
            let a = test_matrix(m, k, 11);
            let b = test_matrix(k, n, 22);
            let naive = a.matmul_naive(&b);
            let mut band = vec![0.0f32; m * n];
            gemm_band(Src::N(&a), Src::N(&b), k, 0, &mut band, n, &Epilogue::NONE, exact_arch());
            assert_eq!(band, naive.as_slice(), "m={m} k={k} n={n}");
        }
    }

    /// Transposed packing must agree with materialized transposes.
    #[test]
    fn packed_transposes_match_materialized() {
        let (m, k, n) = (45, 70, 50);
        let at = test_matrix(k, m, 3); // aᵀ stored
        let bt = test_matrix(n, k, 4); // bᵀ stored
        let a = at.transpose();
        let b = bt.transpose();
        let reference = a.matmul_naive(&b);
        let mut tn = vec![0.0f32; m * n];
        gemm_band(Src::T(&at), Src::N(&b), k, 0, &mut tn, n, &Epilogue::NONE, exact_arch());
        assert_eq!(tn, reference.as_slice(), "tn path");
        let mut nt = vec![0.0f32; m * n];
        gemm_band(Src::N(&a), Src::T(&bt), k, 0, &mut nt, n, &Epilogue::NONE, exact_arch());
        assert_eq!(nt, reference.as_slice(), "nt path");
    }

    /// A band starting mid-matrix must see the right `a` rows.
    #[test]
    fn band_offset_reads_correct_rows() {
        let (m, k, n) = (40, 48, 36);
        let a = test_matrix(m, k, 7);
        let b = test_matrix(k, n, 8);
        let full = a.matmul_naive(&b);
        let row0 = 13;
        let rows = 19;
        let mut band = vec![0.0f32; rows * n];
        gemm_band(Src::N(&a), Src::N(&b), k, row0, &mut band, n, &Epilogue::NONE, exact_arch());
        assert_eq!(band, &full.as_slice()[row0 * n..(row0 + rows) * n]);
    }

    #[test]
    fn k_zero_applies_epilogue_only() {
        let a = Matrix::zeros(3, 0);
        let bias = [1.0f32, -2.0, 0.5];
        let mut band = vec![0.0f32; 9];
        let epi = Epilogue { bias: Some(&bias), act: ActKind::Relu };
        gemm_band(Src::N(&a), Src::N(&Matrix::zeros(0, 3)), 0, 0, &mut band, 3, &epi, exact_arch());
        assert_eq!(band, [1.0, 0.0, 0.5, 1.0, 0.0, 0.5, 1.0, 0.0, 0.5]);
    }

    #[test]
    fn dispatch_counters_advance() {
        let (t0, s0, _, _) = gemm_dispatch_counts();
        let a = test_matrix(64, 64, 1);
        let b = test_matrix(64, 64, 2);
        let mut band = vec![0.0f32; 64 * 64];
        gemm_band(Src::N(&a), Src::N(&b), 64, 0, &mut band, 64, &Epilogue::NONE, exact_arch());
        let small_a = test_matrix(1, 16, 3);
        let small_b = test_matrix(16, 4, 4);
        let mut small_band = vec![0.0f32; 4];
        gemm_band(
            Src::N(&small_a),
            Src::N(&small_b),
            16,
            0,
            &mut small_band,
            4,
            &Epilogue::NONE,
            exact_arch(),
        );
        let (t1, s1, _, _) = gemm_dispatch_counts();
        assert!(t1 > t0, "tiled counter must advance");
        assert!(s1 > s0, "small counter must advance");
    }

    /// The AVX2-compiled microkernel must produce the same bits as the
    /// baseline-compiled body: same source, same per-lane mul+add order.
    #[cfg(target_arch = "x86_64")]
    #[test]
    fn wide_microkernel_matches_baseline_bits() {
        if !crate::backend::cpu_caps().avx2 {
            return;
        }
        let kc = 64;
        let a = test_matrix(MR, kc, 91);
        let b = test_matrix(kc, NR, 92);
        let mut apanel = vec![0.0f32; kc * MR];
        let mut bpanel = vec![0.0f32; kc * NR];
        pack_a(Src::N(&a), 0, MR, 0, kc, &mut apanel);
        pack_b(Src::N(&b), 0, kc, 0, NR, &mut bpanel);
        let mut base = [[0.125f32; NR]; MR];
        let mut wide = base;
        microkernel_body(&apanel, &bpanel, &mut base);
        // SAFETY: guarded by the runtime AVX2 check above.
        unsafe { microkernel_avx2(&apanel, &bpanel, &mut wide) };
        assert_eq!(base, wide);
    }

    /// The fast-math microkernel is toleranced, not bit-tested: its FMA +
    /// split-accumulator sum must stay within a few ULP of the exact body
    /// on both even and odd panel depths (the odd tail is a separate
    /// code path).
    #[cfg(target_arch = "x86_64")]
    #[test]
    fn fma_microkernel_within_tolerance_of_baseline() {
        let caps = crate::backend::cpu_caps();
        if !(caps.avx2 && caps.fma) {
            return;
        }
        for kc in [64usize, 65, 1, 2, 3] {
            let a = test_matrix(MR, kc, 191);
            let b = test_matrix(kc, NR, 192);
            let mut apanel = vec![0.0f32; kc * MR];
            let mut bpanel = vec![0.0f32; kc * NR];
            pack_a(Src::N(&a), 0, MR, 0, kc, &mut apanel);
            pack_b(Src::N(&b), 0, kc, 0, NR, &mut bpanel);
            let mut base = [[0.125f32; NR]; MR];
            let mut fast = base;
            microkernel_body(&apanel, &bpanel, &mut base);
            // SAFETY: guarded by the runtime AVX2+FMA check above.
            unsafe { microkernel_fma(&apanel, &bpanel, &mut fast) };
            for i in 0..MR {
                for j in 0..NR {
                    let (e, f) = (base[i][j], fast[i][j]);
                    let tol = 1e-5 * e.abs().max(1.0);
                    assert!((e - f).abs() <= tol, "kc={kc} ({i},{j}): exact={e} fast={f}");
                }
            }
        }
    }

    #[test]
    fn stable_sigmoid_is_finite_and_symmetric() {
        for &z in &[-100.0f32, -5.0, -0.0, 0.0, 5.0, 100.0] {
            let s = stable_sigmoid(z);
            assert!(s.is_finite() && (0.0..=1.0).contains(&s), "z={z}");
        }
        assert_eq!(stable_sigmoid(0.0), 0.5);
    }

    #[test]
    fn act_kinds_match_reference_forms() {
        for &v in &[-2.5f32, -0.0, 0.0, 0.7, 3.0] {
            assert_eq!(ActKind::Identity.apply(v), v);
            assert_eq!(ActKind::Relu.apply(v), v.max(0.0));
            assert_eq!(ActKind::LeakyRelu(0.01).apply(v), if v > 0.0 { v } else { 0.01 * v });
            assert_eq!(ActKind::Tanh.apply(v), v.tanh());
            assert_eq!(ActKind::Sigmoid.apply(v), stable_sigmoid(v));
        }
    }
}
