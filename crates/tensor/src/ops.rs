//! Algebraic kernels on [`Matrix`]: matmul variants, elementwise ops,
//! broadcasts and reductions.
//!
//! All binary ops validate shapes and return [`crate::Result`]; in-place
//! `*_assign` variants exist for optimizer hot paths.

use crate::backend;
use crate::gemm::{self, ActKind, Epilogue, Src};
use crate::{pool, Matrix, Result, TensorError};

/// Minimum multiply-add volume (`m * k * n`) before forking a matmul
/// across the pool pays for dispatch overhead. Half a MFLOP — roughly
/// the paper's 512-batch hidden-layer products.
pub(crate) const PAR_MIN_WORK: usize = 1 << 19;

/// Number of pool tasks for a kernel with `m` shardable output rows and
/// `work` multiply-adds; `1` means stay on the serial path.
fn par_tasks(m: usize, work: usize) -> usize {
    let threads = pool::effective_threads();
    if threads <= 1 || work < PAR_MIN_WORK {
        1
    } else {
        threads.min(m).max(1)
    }
}

/// Shards the rows of `out` into `tasks` contiguous bands and runs
/// `f(first_row, band)` on each, in parallel when `tasks > 1`.
///
/// Band boundaries are a pure function of `out.rows()` and `tasks`
/// (placement determinism), and `tasks == 1` degenerates to a single
/// call covering the whole matrix — so any kernel whose per-element
/// reduction order is independent of its row range is bit-identical
/// across all task counts.
fn shard_rows(out: &mut Matrix, tasks: usize, f: impl Fn(usize, &mut [f32]) + Sync) {
    let (m, n) = out.shape();
    if m == 0 || n == 0 {
        return;
    }
    let tasks = tasks.clamp(1, m);
    if tasks == 1 {
        f(0, out.as_mut_slice());
        return;
    }
    let band_rows = m.div_ceil(tasks);
    pool::for_each_chunk_mut(out.as_mut_slice(), band_rows * n, tasks, |offset, band| {
        f(offset / n, band);
    });
}

/// Runs the shared gemm microkernel over `out`, sharded into `tasks` row
/// bands. All matmul entry points (nn/tn/nt, allocating or `_into`, with
/// or without a fused epilogue) funnel through here, so dispatch and bit
/// patterns are uniform across the whole family.
///
/// The backend's microkernel flavor is resolved *here*, on the calling
/// thread, before any pool fork — every band of a parallel dispatch runs
/// the same kernel regardless of which worker picks it up.
fn gemm_dispatch(a: Src, b: Src, k: usize, out: &mut Matrix, tasks: usize, epi: &Epilogue) {
    let n = out.cols();
    let arch = backend::current_arch();
    if tasks > 1 {
        gemm::note_parallel_dispatch();
    }
    shard_rows(out, tasks, |row0, band| {
        gemm::gemm_band(a, b, k, row0, band, n, epi, arch);
    });
}

impl Matrix {
    /// `self @ other` — `(m x k) @ (k x n) -> (m x n)`.
    ///
    /// Backed by the register-tiled, packed gemm microkernel (see the
    /// `gemm` module docs); skinny and tiny products fall back to a scalar
    /// kernel, and large ones are row-sharded across the pool (see
    /// [`PAR_MIN_WORK`]). Under a bit-identical backend (scalar or avx2 —
    /// the default; see [`crate::backend`]) every path is bit-identical to
    /// [`Matrix::matmul_naive`] for finite inputs; the opt-in fast-math
    /// backend is toleranced instead.
    pub fn matmul(&self, other: &Matrix) -> Result<Matrix> {
        if self.cols() != other.rows() {
            return Err(TensorError::ShapeMismatch {
                op: "matmul",
                lhs: self.shape(),
                rhs: other.shape(),
            });
        }
        let (m, k) = self.shape();
        let n = other.cols();
        let tasks = par_tasks(m, m.saturating_mul(k).saturating_mul(n));
        self.matmul_parallel(other, tasks)
    }

    /// [`Matrix::matmul`] forced onto the row-sharded path with exactly
    /// `tasks` bands, bypassing the work-size heuristic. Bit-identical to
    /// the serial kernel at every task count (property-tested).
    pub fn matmul_parallel(&self, other: &Matrix, tasks: usize) -> Result<Matrix> {
        if self.cols() != other.rows() {
            return Err(TensorError::ShapeMismatch {
                op: "matmul",
                lhs: self.shape(),
                rhs: other.shape(),
            });
        }
        let mut out = Matrix::zeros(self.rows(), other.cols());
        self.matmul_into_tasks(other, &mut out, tasks);
        Ok(out)
    }

    /// [`Matrix::matmul`] writing into a caller-provided `out` buffer
    /// (zeroed first) instead of allocating — the backward-pass arena
    /// path. Same dispatch heuristics and bit pattern as `matmul`.
    pub fn matmul_into(&self, other: &Matrix, out: &mut Matrix) -> Result<()> {
        if self.cols() != other.rows() {
            return Err(TensorError::ShapeMismatch {
                op: "matmul_into",
                lhs: self.shape(),
                rhs: other.shape(),
            });
        }
        let (m, k) = self.shape();
        let n = other.cols();
        if out.shape() != (m, n) {
            return Err(TensorError::ShapeMismatch {
                op: "matmul_into(out)",
                lhs: out.shape(),
                rhs: (m, n),
            });
        }
        out.fill_zero();
        let tasks = par_tasks(m, m.saturating_mul(k).saturating_mul(n));
        self.matmul_into_tasks(other, out, tasks);
        Ok(())
    }

    /// Shared body of the nn-kernel entry points; `out` must be zeroed.
    fn matmul_into_tasks(&self, other: &Matrix, out: &mut Matrix, tasks: usize) {
        gemm_dispatch(Src::N(self), Src::N(other), self.cols(), out, tasks, &Epilogue::NONE);
    }

    /// The naive serial reference kernel: i-k-j loop order, one `f32`
    /// accumulator per output element, `k` ascending, `a`-zero skip.
    ///
    /// This is the semantics every production variant (tiled, parallel,
    /// transposed, fused) is property-tested bit-identical against, kept
    /// public as the comparison baseline for the `gemm_bench` harness.
    ///
    /// # Panics
    /// Panics on incompatible shapes (reference API — use
    /// [`Matrix::matmul`], which validates and dispatches).
    pub fn matmul_naive(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.cols(), other.rows(), "matmul_naive shape");
        let n = other.cols();
        let mut out = Matrix::zeros(self.rows(), n);
        for i in 0..self.rows() {
            let a_row = self.row(i);
            let out_row = out.row_mut(i);
            for (p, &av) in a_row.iter().enumerate() {
                if av == 0.0 {
                    continue;
                }
                for (o, &bv) in out_row.iter_mut().zip(other.row(p)) {
                    *o += av * bv;
                }
            }
        }
        out
    }

    /// Fused `act(self @ w + bias)` in one output sweep: the matmul
    /// epilogue adds the bias and applies the activation as each element's
    /// k-sum completes, instead of three separate passes over the output.
    /// Bit-identical to the unfused sequence (the intermediate stores it
    /// removes round nothing).
    ///
    /// `bias`, when present, must be `1 x w.cols()`.
    pub fn linear_bias_act(
        &self,
        w: &Matrix,
        bias: Option<&Matrix>,
        act: ActKind,
    ) -> Result<Matrix> {
        let mut out = Matrix::zeros(self.rows(), w.cols());
        self.linear_bias_act_into(w, bias, act, &mut out)?;
        Ok(out)
    }

    /// [`Matrix::linear_bias_act`] writing into a caller-provided buffer
    /// (zeroed first).
    pub fn linear_bias_act_into(
        &self,
        w: &Matrix,
        bias: Option<&Matrix>,
        act: ActKind,
        out: &mut Matrix,
    ) -> Result<()> {
        if self.cols() != w.rows() {
            return Err(TensorError::ShapeMismatch {
                op: "linear_bias_act",
                lhs: self.shape(),
                rhs: w.shape(),
            });
        }
        if let Some(b) = bias {
            if b.rows() != 1 || b.cols() != w.cols() {
                return Err(TensorError::ShapeMismatch {
                    op: "linear_bias_act(bias)",
                    lhs: b.shape(),
                    rhs: (1, w.cols()),
                });
            }
        }
        let (m, k) = self.shape();
        let n = w.cols();
        if out.shape() != (m, n) {
            return Err(TensorError::ShapeMismatch {
                op: "linear_bias_act(out)",
                lhs: out.shape(),
                rhs: (m, n),
            });
        }
        out.fill_zero();
        let epi = Epilogue { bias: bias.map(|b| b.row(0)), act };
        let tasks = par_tasks(m, m.saturating_mul(k).saturating_mul(n));
        gemm_dispatch(Src::N(self), Src::N(w), k, out, tasks, &epi);
        Ok(())
    }

    /// `selfᵀ @ other` — `(k x m)ᵀ @ (k x n) -> (m x n)` without materializing
    /// the transpose. Used by backward passes (`dW = xᵀ @ dy`).
    ///
    /// Same microkernel as [`Matrix::matmul`] — the packing step reads
    /// `self` transposed, so the arithmetic (and the result bits) is
    /// shared; above [`PAR_MIN_WORK`] the output rows are sharded across
    /// the pool.
    pub fn matmul_tn(&self, other: &Matrix) -> Result<Matrix> {
        if self.rows() != other.rows() {
            return Err(TensorError::ShapeMismatch {
                op: "matmul_tn",
                lhs: self.shape(),
                rhs: other.shape(),
            });
        }
        let (k, m) = self.shape();
        let n = other.cols();
        let tasks = par_tasks(m, m.saturating_mul(k).saturating_mul(n));
        self.matmul_tn_parallel(other, tasks)
    }

    /// [`Matrix::matmul_tn`] forced onto the row-sharded path with exactly
    /// `tasks` bands, bypassing the work-size heuristic. Bit-identical to
    /// the serial kernel at every task count (property-tested).
    pub fn matmul_tn_parallel(&self, other: &Matrix, tasks: usize) -> Result<Matrix> {
        if self.rows() != other.rows() {
            return Err(TensorError::ShapeMismatch {
                op: "matmul_tn",
                lhs: self.shape(),
                rhs: other.shape(),
            });
        }
        let mut out = Matrix::zeros(self.cols(), other.cols());
        gemm_dispatch(Src::T(self), Src::N(other), self.rows(), &mut out, tasks, &Epilogue::NONE);
        Ok(out)
    }

    /// [`Matrix::matmul_tn`] writing into a caller-provided `out` buffer
    /// (zeroed first) instead of allocating.
    pub fn matmul_tn_into(&self, other: &Matrix, out: &mut Matrix) -> Result<()> {
        if self.rows() != other.rows() {
            return Err(TensorError::ShapeMismatch {
                op: "matmul_tn_into",
                lhs: self.shape(),
                rhs: other.shape(),
            });
        }
        let (k, m) = self.shape();
        let n = other.cols();
        if out.shape() != (m, n) {
            return Err(TensorError::ShapeMismatch {
                op: "matmul_tn_into(out)",
                lhs: out.shape(),
                rhs: (m, n),
            });
        }
        out.fill_zero();
        let tasks = par_tasks(m, m.saturating_mul(k).saturating_mul(n));
        gemm_dispatch(Src::T(self), Src::N(other), k, out, tasks, &Epilogue::NONE);
        Ok(())
    }

    /// `self @ otherᵀ` — `(m x k) @ (n x k)ᵀ -> (m x n)`. Used by backward
    /// passes (`dx = dy @ Wᵀ`).
    ///
    /// Same microkernel as [`Matrix::matmul`]; the packing step reads
    /// `other` transposed (k-major strips straight from its rows), so no
    /// transpose is ever materialized and the result is bit-identical to
    /// `self.matmul(&other.transpose())`.
    pub fn matmul_nt(&self, other: &Matrix) -> Result<Matrix> {
        if self.cols() != other.cols() {
            return Err(TensorError::ShapeMismatch {
                op: "matmul_nt",
                lhs: self.shape(),
                rhs: other.shape(),
            });
        }
        let (m, k) = self.shape();
        let n = other.rows();
        let tasks = par_tasks(m, m.saturating_mul(k).saturating_mul(n));
        self.matmul_nt_parallel(other, tasks)
    }

    /// [`Matrix::matmul_nt`] forced onto the row-sharded path with exactly
    /// `tasks` bands, bypassing the work-size heuristic. Bit-identical to
    /// the serial kernel at every task count (property-tested).
    pub fn matmul_nt_parallel(&self, other: &Matrix, tasks: usize) -> Result<Matrix> {
        if self.cols() != other.cols() {
            return Err(TensorError::ShapeMismatch {
                op: "matmul_nt",
                lhs: self.shape(),
                rhs: other.shape(),
            });
        }
        let mut out = Matrix::zeros(self.rows(), other.rows());
        gemm_dispatch(Src::N(self), Src::T(other), self.cols(), &mut out, tasks, &Epilogue::NONE);
        Ok(out)
    }

    /// [`Matrix::matmul_nt`] writing into a caller-provided `out` buffer
    /// (zeroed first) instead of allocating — the backward-pass arena
    /// path for `dx = dy @ Wᵀ`.
    pub fn matmul_nt_into(&self, other: &Matrix, out: &mut Matrix) -> Result<()> {
        if self.cols() != other.cols() {
            return Err(TensorError::ShapeMismatch {
                op: "matmul_nt_into",
                lhs: self.shape(),
                rhs: other.shape(),
            });
        }
        let (m, k) = self.shape();
        let n = other.rows();
        if out.shape() != (m, n) {
            return Err(TensorError::ShapeMismatch {
                op: "matmul_nt_into(out)",
                lhs: out.shape(),
                rhs: (m, n),
            });
        }
        out.fill_zero();
        let tasks = par_tasks(m, m.saturating_mul(k).saturating_mul(n));
        gemm_dispatch(Src::N(self), Src::T(other), k, out, tasks, &Epilogue::NONE);
        Ok(())
    }

    /// Elementwise sum: `self + other`.
    pub fn add(&self, other: &Matrix) -> Result<Matrix> {
        self.zip_with("add", other, |a, b| a + b)
    }

    /// Elementwise difference: `self - other`.
    pub fn sub(&self, other: &Matrix) -> Result<Matrix> {
        self.zip_with("sub", other, |a, b| a - b)
    }

    /// Elementwise (Hadamard) product.
    pub fn hadamard(&self, other: &Matrix) -> Result<Matrix> {
        self.zip_with("hadamard", other, |a, b| a * b)
    }

    /// `self += alpha * other`, in place. The optimizer/gradient hot path.
    pub fn add_assign_scaled(&mut self, other: &Matrix, alpha: f32) -> Result<()> {
        if self.shape() != other.shape() {
            return Err(TensorError::ShapeMismatch {
                op: "add_assign_scaled",
                lhs: self.shape(),
                rhs: other.shape(),
            });
        }
        for (a, &b) in self.as_mut_slice().iter_mut().zip(other.as_slice()) {
            *a += alpha * b;
        }
        Ok(())
    }

    /// Multiplies every element by `alpha`, returning a new matrix.
    pub fn scale(&self, alpha: f32) -> Matrix {
        self.map(|v| v * alpha)
    }

    /// Multiplies every element by `alpha` in place.
    pub fn scale_assign(&mut self, alpha: f32) {
        self.map_inplace(|v| v * alpha);
    }

    /// Adds a `1 x cols` row vector to every row: `self + 1·biasᵀ`.
    pub fn add_row_broadcast(&self, bias: &Matrix) -> Result<Matrix> {
        if bias.rows() != 1 || bias.cols() != self.cols() {
            return Err(TensorError::ShapeMismatch {
                op: "add_row_broadcast",
                lhs: self.shape(),
                rhs: bias.shape(),
            });
        }
        let mut out = self.clone();
        let b = bias.row(0);
        for i in 0..out.rows() {
            for (o, &bv) in out.row_mut(i).iter_mut().zip(b) {
                *o += bv;
            }
        }
        Ok(out)
    }

    /// Scales each row `i` of `self` by `scales[i][0]` (an `rows x 1` column).
    pub fn scale_rows(&self, scales: &Matrix) -> Result<Matrix> {
        if scales.rows() != self.rows() || scales.cols() != 1 {
            return Err(TensorError::ShapeMismatch {
                op: "scale_rows",
                lhs: self.shape(),
                rhs: scales.shape(),
            });
        }
        let mut out = self.clone();
        for i in 0..out.rows() {
            let s = scales.get(i, 0);
            for o in out.row_mut(i) {
                *o *= s;
            }
        }
        Ok(out)
    }

    /// Row-wise dot product of two same-shape matrices -> `rows x 1`.
    pub fn rowwise_dot(&self, other: &Matrix) -> Result<Matrix> {
        if self.shape() != other.shape() {
            return Err(TensorError::ShapeMismatch {
                op: "rowwise_dot",
                lhs: self.shape(),
                rhs: other.shape(),
            });
        }
        let mut out = Matrix::zeros(self.rows(), 1);
        for i in 0..self.rows() {
            out.set(i, 0, dot(self.row(i), other.row(i)));
        }
        Ok(out)
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        self.as_slice().iter().sum()
    }

    /// Mean of all elements (`0.0` for an empty matrix).
    pub fn mean(&self) -> f32 {
        if self.is_empty() {
            0.0
        } else {
            self.sum() / self.len() as f32
        }
    }

    /// Column sums -> `1 x cols`. Used for bias gradients.
    pub fn sum_rows(&self) -> Matrix {
        let mut out = Matrix::zeros(1, self.cols());
        for i in 0..self.rows() {
            for (o, &v) in out.row_mut(0).iter_mut().zip(self.row(i)) {
                *o += v;
            }
        }
        out
    }

    /// Row sums -> `rows x 1`.
    pub fn sum_cols(&self) -> Matrix {
        let mut out = Matrix::zeros(self.rows(), 1);
        for i in 0..self.rows() {
            out.set(i, 0, self.row(i).iter().sum());
        }
        out
    }

    /// Column means -> `1 x cols`. Used for the mean user vector.
    pub fn mean_rows(&self) -> Matrix {
        let mut out = self.sum_rows();
        if self.rows() > 0 {
            out.scale_assign(1.0 / self.rows() as f32);
        }
        out
    }

    /// Frobenius norm `sqrt(sum x²)`.
    pub fn frobenius_norm(&self) -> f32 {
        self.as_slice().iter().map(|&v| v * v).sum::<f32>().sqrt()
    }

    /// Squared L2 norm of every row -> `rows x 1`.
    pub fn rowwise_sq_norm(&self) -> Matrix {
        let mut out = Matrix::zeros(self.rows(), 1);
        for i in 0..self.rows() {
            out.set(i, 0, self.row(i).iter().map(|&v| v * v).sum());
        }
        out
    }

    /// Maximum absolute element (`0.0` for an empty matrix).
    pub fn max_abs(&self) -> f32 {
        self.as_slice().iter().fold(0.0f32, |acc, &v| acc.max(v.abs()))
    }

    fn zip_with(
        &self,
        op: &'static str,
        other: &Matrix,
        f: impl Fn(f32, f32) -> f32,
    ) -> Result<Matrix> {
        if self.shape() != other.shape() {
            return Err(TensorError::ShapeMismatch { op, lhs: self.shape(), rhs: other.shape() });
        }
        let data = self.as_slice().iter().zip(other.as_slice()).map(|(&a, &b)| f(a, b)).collect();
        Matrix::from_vec(self.rows(), self.cols(), data)
    }
}

/// Dot product of two equal-length slices (used by `rowwise_dot` and
/// [`cosine`]).
#[inline]
pub fn dot(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    // Four-way unrolled accumulation; lets LLVM vectorize without fast-math.
    let mut acc = [0.0f32; 4];
    let chunks = a.len() / 4;
    for c in 0..chunks {
        let i = c * 4;
        acc[0] += a[i] * b[i];
        acc[1] += a[i + 1] * b[i + 1];
        acc[2] += a[i + 2] * b[i + 2];
        acc[3] += a[i + 3] * b[i + 3];
    }
    let mut tail = 0.0;
    for i in chunks * 4..a.len() {
        tail += a[i] * b[i];
    }
    acc[0] + acc[1] + acc[2] + acc[3] + tail
}

/// Cosine similarity between two equal-length slices; `0.0` when either
/// vector is all-zero (the conventional guard for degenerate embeddings).
pub fn cosine(a: &[f32], b: &[f32]) -> f32 {
    let na = dot(a, a).sqrt();
    let nb = dot(b, b).sqrt();
    if na == 0.0 || nb == 0.0 {
        0.0
    } else {
        dot(a, b) / (na * nb)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mat(rows: &[&[f32]]) -> Matrix {
        Matrix::from_rows(rows).unwrap()
    }

    #[test]
    fn matmul_known_product() {
        let a = mat(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = mat(&[&[5.0, 6.0], &[7.0, 8.0]]);
        let c = a.matmul(&b).unwrap();
        assert_eq!(c, mat(&[&[19.0, 22.0], &[43.0, 50.0]]));
    }

    #[test]
    fn matmul_shape_mismatch() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        assert!(a.matmul(&b).is_err());
    }

    #[test]
    fn matmul_is_bit_identical_to_naive_reference() {
        let a = Matrix::from_fn(13, 37, |i, j| ((i * 31 + j * 17) % 11) as f32 * 0.37 - 1.5);
        let b = Matrix::from_fn(37, 9, |i, j| ((i * 7 + j * 13) % 13) as f32 * 0.21 - 1.1);
        assert_eq!(a.matmul(&b).unwrap(), a.matmul_naive(&b));
    }

    #[test]
    fn large_matmul_dispatches_to_tiled_and_stays_correct() {
        // 640x640 is deep into the tiled path (several KC slabs and NC/MC
        // blocks) and not a multiple of any tile constant.
        let a = Matrix::from_fn(50, 640, |i, j| ((i + j) % 7) as f32 * 0.1);
        let b = Matrix::from_fn(640, 640, |i, j| ((i * 3 + j) % 5) as f32 * 0.2);
        let via_dispatch = a.matmul(&b).unwrap();
        assert_eq!(via_dispatch, a.matmul_naive(&b));
        // Spot-check one element against a manual dot product.
        let manual: f32 = (0..640).map(|p| a.get(7, p) * b.get(p, 11)).sum();
        assert!((via_dispatch.get(7, 11) - manual).abs() < 1e-3);
    }

    #[test]
    fn linear_bias_act_matches_unfused_sequence() {
        let x = Matrix::from_fn(9, 7, |i, j| ((i * 5 + j * 3) % 13) as f32 * 0.31 - 1.9);
        let w = Matrix::from_fn(7, 6, |i, j| ((i * 11 + j) % 7) as f32 * 0.27 - 0.8);
        let bias = Matrix::from_fn(1, 6, |_, j| j as f32 * 0.4 - 1.0);
        for act in [
            ActKind::Identity,
            ActKind::Relu,
            ActKind::LeakyRelu(0.1),
            ActKind::Tanh,
            ActKind::Sigmoid,
        ] {
            let unfused =
                x.matmul(&w).unwrap().add_row_broadcast(&bias).unwrap().map(|v| act.apply(v));
            let fused = x.linear_bias_act(&w, Some(&bias), act).unwrap();
            assert_eq!(fused, unfused, "act={act:?}");
        }
        // Bias-less form.
        let fused = x.linear_bias_act(&w, None, ActKind::Relu).unwrap();
        assert_eq!(fused, x.matmul(&w).unwrap().map(|v| v.max(0.0)));
        // Shape errors.
        assert!(x.linear_bias_act(&Matrix::zeros(3, 3), None, ActKind::Identity).is_err());
        assert!(x.linear_bias_act(&w, Some(&Matrix::zeros(1, 5)), ActKind::Identity).is_err());
    }

    #[test]
    fn matmul_nt_into_matches_allocating_form() {
        let a = Matrix::from_fn(6, 5, |i, j| (i + 2 * j) as f32 * 0.3);
        let b = Matrix::from_fn(8, 5, |i, j| (3 * i + j) as f32 * 0.1 - 1.0);
        let mut out = Matrix::zeros(6, 8);
        a.matmul_nt_into(&b, &mut out).unwrap();
        assert_eq!(out, a.matmul_nt(&b).unwrap());
        assert!(a.matmul_nt_into(&b, &mut Matrix::zeros(2, 2)).is_err());
        assert!(a.matmul_nt_into(&Matrix::zeros(8, 4), &mut out).is_err());
    }

    #[test]
    fn parallel_variants_are_bit_identical_to_serial() {
        let a = Matrix::from_fn(23, 17, |i, j| ((i * 31 + j * 17) % 11) as f32 * 0.37 - 1.5);
        let b = Matrix::from_fn(17, 13, |i, j| ((i * 7 + j * 13) % 13) as f32 * 0.21 - 1.1);
        let at = a.transpose(); // 17 x 23
        let bt = b.transpose(); // 13 x 17
        let nn = a.matmul_parallel(&b, 1).unwrap();
        let tn = at.matmul_tn_parallel(&b, 1).unwrap();
        let nt = a.matmul_nt_parallel(&bt, 1).unwrap();
        // All three variants route through the same microkernel (the
        // packing step absorbs the transposes), so they agree bitwise.
        assert_eq!(nn, tn);
        assert_eq!(nn, nt);
        for tasks in [2usize, 3, 7, 8, 64] {
            assert_eq!(a.matmul_parallel(&b, tasks).unwrap(), nn, "nn tasks={tasks}");
            assert_eq!(at.matmul_tn_parallel(&b, tasks).unwrap(), tn, "tn tasks={tasks}");
            assert_eq!(a.matmul_nt_parallel(&bt, tasks).unwrap(), nt, "nt tasks={tasks}");
        }
    }

    #[test]
    fn parallel_variants_handle_degenerate_shapes() {
        for tasks in [1usize, 4] {
            let empty = Matrix::zeros(0, 5);
            let rhs = Matrix::zeros(5, 0);
            let c = empty.matmul_parallel(&rhs, tasks).unwrap();
            assert_eq!(c.shape(), (0, 0));
            let row = Matrix::from_fn(1, 6, |_, j| j as f32);
            let col = Matrix::from_fn(6, 1, |i, _| i as f32);
            assert_eq!(row.matmul_parallel(&col, tasks).unwrap().get(0, 0), 55.0);
            assert_eq!(col.matmul_parallel(&row, tasks).unwrap(), col.matmul(&row).unwrap(),);
        }
    }

    #[test]
    fn matmul_tn_equals_explicit_transpose() {
        let a = Matrix::from_fn(4, 3, |i, j| (i + 2 * j) as f32);
        let b = Matrix::from_fn(4, 5, |i, j| (3 * i + j) as f32);
        let expected = a.transpose().matmul(&b).unwrap();
        assert_eq!(a.matmul_tn(&b).unwrap(), expected);
    }

    #[test]
    fn matmul_nt_equals_explicit_transpose() {
        let a = Matrix::from_fn(4, 3, |i, j| (i + 2 * j) as f32);
        let b = Matrix::from_fn(5, 3, |i, j| (3 * i + j) as f32);
        let expected = a.matmul(&b.transpose()).unwrap();
        assert_eq!(a.matmul_nt(&b).unwrap(), expected);
    }

    #[test]
    fn elementwise_ops() {
        let a = mat(&[&[1.0, 2.0]]);
        let b = mat(&[&[3.0, 5.0]]);
        assert_eq!(a.add(&b).unwrap(), mat(&[&[4.0, 7.0]]));
        assert_eq!(b.sub(&a).unwrap(), mat(&[&[2.0, 3.0]]));
        assert_eq!(a.hadamard(&b).unwrap(), mat(&[&[3.0, 10.0]]));
        assert!(a.add(&Matrix::zeros(2, 2)).is_err());
    }

    #[test]
    fn add_assign_scaled_updates_in_place() {
        let mut a = mat(&[&[1.0, 1.0]]);
        let g = mat(&[&[2.0, 4.0]]);
        a.add_assign_scaled(&g, -0.5).unwrap();
        assert_eq!(a, mat(&[&[0.0, -1.0]]));
    }

    #[test]
    fn broadcasts() {
        let x = mat(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let bias = mat(&[&[10.0, 20.0]]);
        assert_eq!(x.add_row_broadcast(&bias).unwrap(), mat(&[&[11.0, 22.0], &[13.0, 24.0]]));
        let scales = Matrix::col_vector(&[2.0, -1.0]);
        assert_eq!(x.scale_rows(&scales).unwrap(), mat(&[&[2.0, 4.0], &[-3.0, -4.0]]));
        assert!(x.add_row_broadcast(&Matrix::zeros(1, 3)).is_err());
        assert!(x.scale_rows(&Matrix::zeros(3, 1)).is_err());
    }

    #[test]
    fn reductions() {
        let x = mat(&[&[1.0, 2.0], &[3.0, 4.0]]);
        assert_eq!(x.sum(), 10.0);
        assert_eq!(x.mean(), 2.5);
        assert_eq!(x.sum_rows(), mat(&[&[4.0, 6.0]]));
        assert_eq!(x.sum_cols(), Matrix::col_vector(&[3.0, 7.0]));
        assert_eq!(x.mean_rows(), mat(&[&[2.0, 3.0]]));
        assert_eq!(x.rowwise_sq_norm(), Matrix::col_vector(&[5.0, 25.0]));
        assert!((x.frobenius_norm() - 30.0f32.sqrt()).abs() < 1e-6);
        assert_eq!(x.max_abs(), 4.0);
    }

    #[test]
    fn rowwise_dot_matches_manual() {
        let a = mat(&[&[1.0, 2.0], &[0.0, -1.0]]);
        let b = mat(&[&[3.0, 4.0], &[5.0, 6.0]]);
        assert_eq!(a.rowwise_dot(&b).unwrap(), Matrix::col_vector(&[11.0, -6.0]));
    }

    #[test]
    fn dot_handles_all_lengths() {
        for n in 0..9 {
            let a: Vec<f32> = (0..n).map(|i| i as f32).collect();
            let b: Vec<f32> = (0..n).map(|i| (i + 1) as f32).collect();
            let expected: f32 = (0..n).map(|i| (i * (i + 1)) as f32).sum();
            assert_eq!(dot(&a, &b), expected, "n={n}");
        }
    }

    #[test]
    fn cosine_basics() {
        assert!((cosine(&[1.0, 0.0], &[1.0, 0.0]) - 1.0).abs() < 1e-6);
        assert!((cosine(&[1.0, 0.0], &[0.0, 1.0])).abs() < 1e-6);
        assert!((cosine(&[1.0, 0.0], &[-2.0, 0.0]) + 1.0).abs() < 1e-6);
        assert_eq!(cosine(&[0.0, 0.0], &[1.0, 1.0]), 0.0);
    }
}
