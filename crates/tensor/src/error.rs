//! Error type for tensor operations.

use std::fmt;

/// Errors produced by matrix construction, algebra and (de)serialization.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TensorError {
    /// Two operands had incompatible shapes for the requested operation.
    ShapeMismatch {
        /// Operation name, e.g. `"matmul"`.
        op: &'static str,
        /// Shape of the left operand.
        lhs: (usize, usize),
        /// Shape of the right operand.
        rhs: (usize, usize),
    },
    /// A buffer's length did not match the requested `rows * cols`.
    LengthMismatch {
        /// Expected number of elements.
        expected: usize,
        /// Number of elements actually supplied.
        actual: usize,
    },
    /// An index was out of bounds.
    OutOfBounds {
        /// Description of what was indexed.
        what: &'static str,
        /// The offending index.
        index: usize,
        /// The exclusive bound.
        bound: usize,
    },
    /// A serialized buffer was malformed.
    Corrupt(&'static str),
}

impl fmt::Display for TensorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TensorError::ShapeMismatch { op, lhs, rhs } => write!(
                f,
                "shape mismatch in {op}: lhs {}x{}, rhs {}x{}",
                lhs.0, lhs.1, rhs.0, rhs.1
            ),
            TensorError::LengthMismatch { expected, actual } => {
                write!(f, "buffer length mismatch: expected {expected}, got {actual}")
            }
            TensorError::OutOfBounds { what, index, bound } => {
                write!(f, "{what} index {index} out of bounds (< {bound})")
            }
            TensorError::Corrupt(msg) => write!(f, "corrupt matrix buffer: {msg}"),
        }
    }
}

impl std::error::Error for TensorError {}
