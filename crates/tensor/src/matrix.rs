//! The [`Matrix`] type: a dense, row-major, 2-D `f32` array.

use crate::{Result, TensorError};

/// A dense row-major matrix of `f32`.
///
/// Row vectors (`1 x n`) and column vectors (`n x 1`) are represented as
/// ordinary matrices; the crate does not have a separate vector type.
///
/// # Examples
/// ```
/// use atnn_tensor::Matrix;
/// let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]).unwrap();
/// let b = Matrix::identity(2);
/// let c = a.matmul(&b).unwrap();
/// assert_eq!(c, a);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    data: Vec<f32>,
    rows: usize,
    cols: usize,
}

impl Matrix {
    /// Creates a `rows x cols` matrix of zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix { data: vec![0.0; rows * cols], rows, cols }
    }

    /// Creates a `rows x cols` matrix filled with `value`.
    pub fn full(rows: usize, cols: usize, value: f32) -> Self {
        Matrix { data: vec![value; rows * cols], rows, cols }
    }

    /// Creates the `n x n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m.data[i * n + i] = 1.0;
        }
        m
    }

    /// Wraps an existing buffer as a matrix.
    ///
    /// # Errors
    /// Returns [`TensorError::LengthMismatch`] when `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Result<Self> {
        if data.len() != rows * cols {
            return Err(TensorError::LengthMismatch { expected: rows * cols, actual: data.len() });
        }
        Ok(Matrix { data, rows, cols })
    }

    /// Builds a matrix from row slices; all rows must have equal length.
    pub fn from_rows(rows: &[&[f32]]) -> Result<Self> {
        let r = rows.len();
        let c = rows.first().map_or(0, |row| row.len());
        let mut data = Vec::with_capacity(r * c);
        for row in rows {
            if row.len() != c {
                return Err(TensorError::LengthMismatch { expected: c, actual: row.len() });
            }
            data.extend_from_slice(row);
        }
        Ok(Matrix { data, rows: r, cols: c })
    }

    /// Builds a matrix by evaluating `f(row, col)` for every element.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f32) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for i in 0..rows {
            for j in 0..cols {
                data.push(f(i, j));
            }
        }
        Matrix { data, rows, cols }
    }

    /// Builds a `1 x n` row vector from a slice.
    pub fn row_vector(values: &[f32]) -> Self {
        Matrix { data: values.to_vec(), rows: 1, cols: values.len() }
    }

    /// Builds an `n x 1` column vector from a slice.
    pub fn col_vector(values: &[f32]) -> Self {
        Matrix { data: values.to_vec(), rows: values.len(), cols: 1 }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)` pair.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Total number of elements.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when the matrix has no elements.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Immutable view of the backing buffer (row-major).
    #[inline]
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the backing buffer (row-major).
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the matrix, returning its buffer.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Element accessor (panics on out-of-bounds, like slice indexing).
    #[inline]
    pub fn get(&self, row: usize, col: usize) -> f32 {
        debug_assert!(row < self.rows && col < self.cols);
        self.data[row * self.cols + col]
    }

    /// Element setter (panics on out-of-bounds, like slice indexing).
    #[inline]
    pub fn set(&mut self, row: usize, col: usize, value: f32) {
        debug_assert!(row < self.rows && col < self.cols);
        self.data[row * self.cols + col] = value;
    }

    /// Immutable view of one row.
    #[inline]
    pub fn row(&self, row: usize) -> &[f32] {
        &self.data[row * self.cols..(row + 1) * self.cols]
    }

    /// Mutable view of one row.
    #[inline]
    pub fn row_mut(&mut self, row: usize) -> &mut [f32] {
        &mut self.data[row * self.cols..(row + 1) * self.cols]
    }

    /// Iterator over row slices.
    pub fn iter_rows(&self) -> impl Iterator<Item = &[f32]> {
        self.data.chunks_exact(self.cols.max(1))
    }

    /// Returns a new matrix whose rows are `self`'s rows at `indices`.
    ///
    /// # Errors
    /// Returns [`TensorError::OutOfBounds`] for any index `>= rows()`.
    pub fn select_rows(&self, indices: &[u32]) -> Result<Matrix> {
        let mut out = Matrix::zeros(indices.len(), self.cols);
        for (dst, &idx) in indices.iter().enumerate() {
            let idx = idx as usize;
            if idx >= self.rows {
                return Err(TensorError::OutOfBounds { what: "row", index: idx, bound: self.rows });
            }
            out.row_mut(dst).copy_from_slice(self.row(idx));
        }
        Ok(out)
    }

    /// Returns the transpose.
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        self.transpose_body(&mut out);
        out
    }

    /// Writes the transpose into a caller-provided `cols x rows` buffer
    /// (the allocation-free variant for scratch-arena users).
    ///
    /// # Panics
    /// Panics when `out` is not `cols x rows`.
    pub fn transpose_into(&self, out: &mut Matrix) {
        assert_eq!(out.shape(), (self.cols, self.rows), "transpose_into shape");
        self.transpose_body(out);
    }

    fn transpose_body(&self, out: &mut Matrix) {
        for i in 0..self.rows {
            for (j, &v) in self.row(i).iter().enumerate() {
                out.data[j * self.rows + i] = v;
            }
        }
    }

    /// Horizontally concatenates `self` and `other` (same row count).
    pub fn concat_cols(&self, other: &Matrix) -> Result<Matrix> {
        if self.rows != other.rows {
            return Err(TensorError::ShapeMismatch {
                op: "concat_cols",
                lhs: self.shape(),
                rhs: other.shape(),
            });
        }
        let cols = self.cols + other.cols;
        let mut data = Vec::with_capacity(self.rows * cols);
        for i in 0..self.rows {
            data.extend_from_slice(self.row(i));
            data.extend_from_slice(other.row(i));
        }
        Ok(Matrix { data, rows: self.rows, cols })
    }

    /// Vertically concatenates `self` and `other` (same column count).
    pub fn concat_rows(&self, other: &Matrix) -> Result<Matrix> {
        if self.cols != other.cols {
            return Err(TensorError::ShapeMismatch {
                op: "concat_rows",
                lhs: self.shape(),
                rhs: other.shape(),
            });
        }
        let mut data = Vec::with_capacity((self.rows + other.rows) * self.cols);
        data.extend_from_slice(&self.data);
        data.extend_from_slice(&other.data);
        Ok(Matrix { data, rows: self.rows + other.rows, cols: self.cols })
    }

    /// Returns columns `[start, end)` as a new matrix.
    pub fn slice_cols(&self, start: usize, end: usize) -> Result<Matrix> {
        if start > end || end > self.cols {
            return Err(TensorError::OutOfBounds { what: "column", index: end, bound: self.cols });
        }
        let w = end - start;
        let mut out = Matrix::zeros(self.rows, w);
        for i in 0..self.rows {
            out.row_mut(i).copy_from_slice(&self.row(i)[start..end]);
        }
        Ok(out)
    }

    /// Applies `f` to every element, returning a new matrix.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Matrix {
        Matrix { data: self.data.iter().map(|&v| f(v)).collect(), rows: self.rows, cols: self.cols }
    }

    /// Applies `f` to every element in place.
    pub fn map_inplace(&mut self, f: impl Fn(f32) -> f32) {
        for v in &mut self.data {
            *v = f(*v);
        }
    }

    /// Fills the matrix with zeros without reallocating.
    pub fn fill_zero(&mut self) {
        self.data.iter_mut().for_each(|v| *v = 0.0);
    }
}

impl std::fmt::Display for Matrix {
    /// Debug-friendly rendering: small matrices in full, large ones
    /// elided to their 4×4 corner with a shape note.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        const SHOW: usize = 4;
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        for i in 0..self.rows.min(SHOW) {
            write!(f, "  [")?;
            for j in 0..self.cols.min(SHOW) {
                if j > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{:>9.4}", self.get(i, j))?;
            }
            if self.cols > SHOW {
                write!(f, ", …")?;
            }
            writeln!(f, "]")?;
        }
        if self.rows > SHOW {
            writeln!(f, "  …")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_accessors() {
        let m = Matrix::from_fn(2, 3, |i, j| (i * 3 + j) as f32);
        assert_eq!(m.shape(), (2, 3));
        assert_eq!(m.get(1, 2), 5.0);
        assert_eq!(m.row(1), &[3.0, 4.0, 5.0]);
        assert_eq!(m.len(), 6);
        assert!(!m.is_empty());
    }

    #[test]
    fn from_vec_rejects_bad_length() {
        let err = Matrix::from_vec(2, 2, vec![1.0; 3]).unwrap_err();
        assert_eq!(err, TensorError::LengthMismatch { expected: 4, actual: 3 });
    }

    #[test]
    fn from_rows_rejects_ragged_input() {
        let err = Matrix::from_rows(&[&[1.0, 2.0], &[3.0][..]]).unwrap_err();
        assert!(matches!(err, TensorError::LengthMismatch { .. }));
    }

    #[test]
    fn identity_is_diagonal() {
        let id = Matrix::identity(3);
        for i in 0..3 {
            for j in 0..3 {
                assert_eq!(id.get(i, j), if i == j { 1.0 } else { 0.0 });
            }
        }
    }

    #[test]
    fn transpose_roundtrip() {
        let m = Matrix::from_fn(3, 4, |i, j| (i * 7 + j * 3) as f32);
        assert_eq!(m.transpose().transpose(), m);
        assert_eq!(m.transpose().shape(), (4, 3));
        assert_eq!(m.transpose().get(2, 1), m.get(1, 2));
    }

    #[test]
    fn concat_cols_works() {
        let a = Matrix::from_rows(&[&[1.0], &[2.0]]).unwrap();
        let b = Matrix::from_rows(&[&[3.0, 4.0], &[5.0, 6.0]]).unwrap();
        let c = a.concat_cols(&b).unwrap();
        assert_eq!(c.shape(), (2, 3));
        assert_eq!(c.row(0), &[1.0, 3.0, 4.0]);
        assert_eq!(c.row(1), &[2.0, 5.0, 6.0]);
    }

    #[test]
    fn concat_cols_rejects_row_mismatch() {
        let a = Matrix::zeros(2, 1);
        let b = Matrix::zeros(3, 1);
        assert!(a.concat_cols(&b).is_err());
    }

    #[test]
    fn concat_rows_works() {
        let a = Matrix::row_vector(&[1.0, 2.0]);
        let b = Matrix::row_vector(&[3.0, 4.0]);
        let c = a.concat_rows(&b).unwrap();
        assert_eq!(c.shape(), (2, 2));
        assert_eq!(c.row(1), &[3.0, 4.0]);
    }

    #[test]
    fn slice_cols_extracts_window() {
        let m = Matrix::from_fn(2, 4, |i, j| (i * 4 + j) as f32);
        let s = m.slice_cols(1, 3).unwrap();
        assert_eq!(s.shape(), (2, 2));
        assert_eq!(s.row(0), &[1.0, 2.0]);
        assert_eq!(s.row(1), &[5.0, 6.0]);
        assert!(m.slice_cols(3, 5).is_err());
    }

    #[test]
    fn select_rows_gathers_and_validates() {
        let m = Matrix::from_fn(4, 2, |i, _| i as f32);
        let g = m.select_rows(&[3, 0, 3]).unwrap();
        assert_eq!(g.row(0), &[3.0, 3.0]);
        assert_eq!(g.row(1), &[0.0, 0.0]);
        assert_eq!(g.row(2), &[3.0, 3.0]);
        assert!(m.select_rows(&[4]).is_err());
    }

    #[test]
    fn display_shows_small_and_elides_large() {
        let small = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.5]]).unwrap();
        let s = format!("{small}");
        assert!(s.contains("Matrix 2x2"));
        assert!(s.contains("1.0000") && s.contains("4.5000"));
        assert!(!s.contains('…'));

        let big = Matrix::zeros(10, 10);
        let b = format!("{big}");
        assert!(b.contains("Matrix 10x10"));
        assert!(b.contains('…'), "large matrices are elided");
        assert!(b.lines().count() <= 8);
    }

    #[test]
    fn map_and_fill() {
        let mut m = Matrix::full(2, 2, 2.0);
        let doubled = m.map(|v| v * 2.0);
        assert_eq!(doubled.as_slice(), &[4.0; 4]);
        m.map_inplace(|v| v + 1.0);
        assert_eq!(m.as_slice(), &[3.0; 4]);
        m.fill_zero();
        assert_eq!(m.as_slice(), &[0.0; 4]);
    }
}
