//! The workspace-wide parallel compute runtime: a lazily-initialized,
//! size-configurable pool of worker threads with scoped fork/join helpers.
//!
//! Sizing: the `ATNN_THREADS` environment variable, read once at first
//! use, falling back to [`std::thread::available_parallelism`]. A scoped
//! override — [`with_threads`] — takes precedence over both, which is how
//! tests pin parallelism deterministically without touching the
//! environment.
//!
//! Execution model: callers never hold a pool handle. [`run_tasks`] splits
//! a region into `tasks` closure invocations, runs one inline on the
//! calling thread and hands the rest to the shared workers, then blocks —
//! *helping drain the queue while it waits*, so nested or concurrent
//! regions cannot deadlock. Code running inside a pool task reports
//! [`effective_threads`]`() == 1`, which collapses nested parallel
//! dispatch to the serial kernels (no oversubscription, and the
//! bit-identical guarantee composes trivially).
//!
//! Every helper here preserves *placement determinism*: which chunk of
//! work lands in which output slot is a pure function of the input sizes,
//! never of thread scheduling. Combined with kernels whose per-element
//! reduction order is independent of the sharding, results are bit-for-bit
//! identical at every thread count.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::time::Duration;

use atnn_obs::Counter;

/// Hard ceiling on pool workers, guarding against absurd `ATNN_THREADS`.
const MAX_THREADS: usize = 64;

// --- dispatch telemetry ---------------------------------------------------
// Process-global, monotone, relaxed counters (always on: one `fetch_add`
// per region / per task, no allocation). `shard_task_counts` shows how
// evenly regions sharded; a skewed histogram means chunk sizing is off.

/// Regions that ran entirely inline (`tasks <= 1`).
static SERIAL_REGIONS: Counter = Counter::new();
/// Regions that actually forked onto the pool.
static PARALLEL_REGIONS: Counter = Counter::new();
// A const is the MSRV-compatible way to repeat a non-Copy initializer;
// each array slot gets its own Counter, so the interior-mutability lint
// does not apply.
#[allow(clippy::declare_interior_mutable_const)]
const SHARD_ZERO: Counter = Counter::new();
/// Tasks executed per shard index (shard 0 is the caller-inline share).
static SHARD_TASKS: [Counter; MAX_THREADS] = [SHARD_ZERO; MAX_THREADS];

/// Dispatch counts since process start: `(parallel_regions,
/// serial_regions)`. A region is one [`run_tasks`] call; serial means it
/// ran inline without touching the pool.
pub fn dispatch_counts() -> (u64, u64) {
    (PARALLEL_REGIONS.get(), SERIAL_REGIONS.get())
}

/// Tasks executed per shard index since process start, trailing zeros
/// trimmed (index 0 = the caller-inline share of each region).
pub fn shard_task_counts() -> Vec<u64> {
    let mut counts: Vec<u64> = SHARD_TASKS.iter().map(Counter::get).collect();
    while counts.len() > 1 && counts.last() == Some(&0) {
        counts.pop();
    }
    counts
}

/// How long a waiting caller sleeps between queue-help attempts.
const HELP_WAIT: Duration = Duration::from_micros(200);

/// The configured pool width: `ATNN_THREADS` if set and positive,
/// otherwise the machine's available parallelism. Read once; cached.
pub fn configured_threads() -> usize {
    static CONFIGURED: OnceLock<usize> = OnceLock::new();
    *CONFIGURED.get_or_init(|| {
        std::env::var("ATNN_THREADS")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .filter(|&n| n > 0)
            .unwrap_or_else(|| std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1))
            .min(MAX_THREADS)
    })
}

thread_local! {
    static OVERRIDE: std::cell::Cell<Option<usize>> = const { std::cell::Cell::new(None) };
    static IN_TASK: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
}

/// The parallelism visible at this call site: 1 inside a pool task
/// (nested regions run serial), else the [`with_threads`] override, else
/// [`configured_threads`]. Kernel dispatch keys off this value.
pub fn effective_threads() -> usize {
    if IN_TASK.with(|t| t.get()) {
        1
    } else {
        OVERRIDE.with(|o| o.get()).unwrap_or_else(configured_threads)
    }
}

/// Runs `f` with [`effective_threads`] pinned to `threads` on this thread.
///
/// The hook behind the determinism tests: the same training run under
/// `with_threads(1)` and `with_threads(8)` must produce bit-identical
/// weights, because every parallel kernel is bit-identical to its serial
/// counterpart.
pub fn with_threads<R>(threads: usize, f: impl FnOnce() -> R) -> R {
    assert!(threads > 0, "with_threads: need at least one thread");
    struct Restore(Option<usize>);
    impl Drop for Restore {
        fn drop(&mut self) {
            OVERRIDE.with(|o| o.set(self.0));
        }
    }
    let _restore = Restore(OVERRIDE.with(|o| o.replace(Some(threads.min(MAX_THREADS)))));
    f()
}

/// A unit of queued work: an erased borrow of the caller's closure plus
/// the task index it should run and the latch to signal.
///
/// Safety: the `'static` on `f` is a lie told by [`run_tasks`], which
/// blocks until `latch` confirms every job has *finished running* before
/// its frame (and the closure it borrows) can unwind. Jobs never outlive
/// the call that spawned them.
struct Job {
    f: &'static (dyn Fn(usize) + Sync),
    idx: usize,
    latch: Arc<Latch>,
    /// The submitting thread's scoped backend override, captured at push
    /// so a `with_backend` scope covers work the pool runs on its behalf
    /// (the process default is global and needs no forwarding).
    backend: Option<crate::backend::BackendKind>,
}

/// Countdown of outstanding jobs for one `run_tasks` region.
struct Latch {
    remaining: AtomicUsize,
    panicked: AtomicBool,
    mutex: Mutex<()>,
    cv: Condvar,
}

impl Latch {
    fn new(count: usize) -> Arc<Self> {
        Arc::new(Latch {
            remaining: AtomicUsize::new(count),
            panicked: AtomicBool::new(false),
            mutex: Mutex::new(()),
            cv: Condvar::new(),
        })
    }

    fn complete(&self) {
        if self.remaining.fetch_sub(1, Ordering::AcqRel) == 1 {
            let _guard = self.mutex.lock().unwrap();
            self.cv.notify_all();
        }
    }

    fn done(&self) -> bool {
        self.remaining.load(Ordering::Acquire) == 0
    }
}

/// The shared injection queue all workers (and helping callers) drain.
struct JobQueue {
    jobs: Mutex<VecDeque<Job>>,
    cv: Condvar,
}

impl JobQueue {
    fn push(&self, job: Job) {
        self.jobs.lock().unwrap().push_back(job);
        self.cv.notify_one();
    }

    fn pop_blocking(&self) -> Job {
        let mut q = self.jobs.lock().unwrap();
        loop {
            if let Some(job) = q.pop_front() {
                return job;
            }
            q = self.cv.wait(q).unwrap();
        }
    }

    fn try_pop(&self) -> Option<Job> {
        self.jobs.lock().unwrap().pop_front()
    }
}

struct Pool {
    queue: Arc<JobQueue>,
    spawned: Mutex<usize>,
}

fn pool() -> &'static Pool {
    static POOL: OnceLock<Pool> = OnceLock::new();
    POOL.get_or_init(|| Pool {
        queue: Arc::new(JobQueue { jobs: Mutex::new(VecDeque::new()), cv: Condvar::new() }),
        spawned: Mutex::new(0),
    })
}

/// Runs a job, recording panics on its latch instead of crashing a worker.
fn run_job(job: Job) {
    SHARD_TASKS[job.idx.min(MAX_THREADS - 1)].incr();
    let was_in_task = IN_TASK.with(|t| t.replace(true));
    let prev_backend = crate::backend::set_scoped_override(job.backend);
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| (job.f)(job.idx)));
    crate::backend::set_scoped_override(prev_backend);
    IN_TASK.with(|t| t.set(was_in_task));
    if result.is_err() {
        job.latch.panicked.store(true, Ordering::Release);
    }
    job.latch.complete();
}

/// Lazily grows the worker set to at least `want` threads.
fn ensure_workers(want: usize) {
    let p = pool();
    let mut spawned = p.spawned.lock().unwrap();
    while *spawned < want.min(MAX_THREADS) {
        let queue = Arc::clone(&p.queue);
        let name = format!("atnn-pool-{}", *spawned);
        std::thread::Builder::new()
            .name(name)
            .spawn(move || loop {
                run_job(queue.pop_blocking());
            })
            .expect("spawn pool worker");
        *spawned += 1;
    }
}

/// Forks `f` across `tasks` invocations — `f(0)` inline on the caller,
/// `f(1..tasks)` on pool workers — and joins them all before returning.
///
/// The caller helps drain the shared queue while it waits, so regions
/// started from inside other regions (or from several threads at once)
/// always make progress. Panics in any task are propagated to the caller
/// after all tasks finish.
pub fn run_tasks(tasks: usize, f: &(dyn Fn(usize) + Sync)) {
    if tasks <= 1 {
        SERIAL_REGIONS.incr();
        f(0);
        return;
    }
    PARALLEL_REGIONS.incr();
    SHARD_TASKS[0].incr();
    ensure_workers(tasks - 1);
    let latch = Latch::new(tasks - 1);
    // Safety: see `Job` — this function does not return until every job
    // has completed, so the borrow cannot dangle.
    let f_static: &'static (dyn Fn(usize) + Sync) = unsafe { std::mem::transmute(f) };
    let queue = &pool().queue;
    let backend = crate::backend::scoped_override();
    for idx in 1..tasks {
        queue.push(Job { f: f_static, idx, latch: Arc::clone(&latch), backend });
    }

    // Run our own share (nested dispatch inside it sees 1 thread).
    let was_in_task = IN_TASK.with(|t| t.replace(true));
    let own = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f(0)));
    IN_TASK.with(|t| t.set(was_in_task));

    // Join, helping with queued work (ours or anyone's) while we wait.
    while !latch.done() {
        if let Some(job) = queue.try_pop() {
            run_job(job);
            continue;
        }
        let guard = latch.mutex.lock().unwrap();
        if latch.done() {
            break;
        }
        let _ = latch.cv.wait_timeout(guard, HELP_WAIT).unwrap();
    }

    if let Err(payload) = own {
        std::panic::resume_unwind(payload);
    }
    assert!(
        !latch.panicked.load(Ordering::Acquire),
        "a pool task panicked; see worker output above"
    );
}

/// Splits `data` into contiguous chunks of at most `chunk_len` elements
/// and applies `f(element_offset, chunk)` to each, using up to `tasks`
/// threads. Chunk boundaries depend only on `data.len()` and `chunk_len`,
/// never on scheduling.
pub fn for_each_chunk_mut<T: Send>(
    data: &mut [T],
    chunk_len: usize,
    tasks: usize,
    f: impl Fn(usize, &mut [T]) + Sync,
) {
    assert!(chunk_len > 0, "for_each_chunk_mut: chunk_len must be positive");
    if data.is_empty() {
        return;
    }
    let n_chunks = data.len().div_ceil(chunk_len);
    let work = Mutex::new(data.chunks_mut(chunk_len).enumerate());
    run_tasks(tasks.min(n_chunks), &|_| loop {
        let next = work.lock().unwrap().next();
        match next {
            Some((i, chunk)) => f(i * chunk_len, chunk),
            None => break,
        }
    });
}

/// Maps `f` over contiguous chunks of `items` (at most `chunk_len` long)
/// in parallel, returning results in input order.
pub fn map_chunks<T: Sync, R: Send>(
    items: &[T],
    chunk_len: usize,
    tasks: usize,
    f: impl Fn(&[T]) -> R + Sync,
) -> Vec<R> {
    assert!(chunk_len > 0, "map_chunks: chunk_len must be positive");
    if items.is_empty() {
        return Vec::new();
    }
    let n_chunks = items.len().div_ceil(chunk_len);
    let work = Mutex::new(items.chunks(chunk_len).enumerate());
    let results: Mutex<Vec<(usize, R)>> = Mutex::new(Vec::with_capacity(n_chunks));
    run_tasks(tasks.min(n_chunks), &|_| loop {
        let next = work.lock().unwrap().next();
        match next {
            Some((i, chunk)) => {
                let r = f(chunk);
                results.lock().unwrap().push((i, r));
            }
            None => break,
        }
    });
    let mut results = results.into_inner().unwrap();
    results.sort_unstable_by_key(|&(i, _)| i);
    results.into_iter().map(|(_, r)| r).collect()
}

/// Runs two closures, potentially in parallel, returning both results.
pub fn join<RA: Send, RB: Send>(
    a: impl FnOnce() -> RA + Send,
    b: impl FnOnce() -> RB + Send,
) -> (RA, RB) {
    if effective_threads() <= 1 {
        return (a(), b());
    }
    let fa = Mutex::new(Some(a));
    let fb = Mutex::new(Some(b));
    let ra: Mutex<Option<RA>> = Mutex::new(None);
    let rb: Mutex<Option<RB>> = Mutex::new(None);
    run_tasks(2, &|idx| {
        if idx == 0 {
            let f = fa.lock().unwrap().take().expect("join task 0 ran twice");
            *ra.lock().unwrap() = Some(f());
        } else {
            let f = fb.lock().unwrap().take().expect("join task 1 ran twice");
            *rb.lock().unwrap() = Some(f());
        }
    });
    (
        ra.into_inner().unwrap().expect("join lost result 0"),
        rb.into_inner().unwrap().expect("join lost result 1"),
    )
}

/// Runs three closures, potentially in parallel, returning all results.
pub fn join3<RA: Send, RB: Send, RC: Send>(
    a: impl FnOnce() -> RA + Send,
    b: impl FnOnce() -> RB + Send,
    c: impl FnOnce() -> RC + Send,
) -> (RA, RB, RC) {
    let ((ra, rb), rc) = join(|| join(a, b), c);
    (ra, rb, rc)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dispatch_counters_account_regions_and_shards() {
        // Counters are process-global and other tests run concurrently,
        // so assert on deltas with `>=` only.
        let (par0, ser0) = dispatch_counts();
        run_tasks(1, &|_| {});
        run_tasks(4, &|_| {});
        let (par1, ser1) = dispatch_counts();
        assert!(ser1 > ser0, "serial region not counted");
        assert!(par1 > par0, "parallel region not counted");
        let shards = shard_task_counts();
        assert!(shards.len() >= 4, "4-way region must touch shards 0..=3, got {shards:?}");
        assert!(shards[..4].iter().all(|&n| n >= 1), "every shard ran: {shards:?}");
    }

    #[test]
    fn run_tasks_covers_all_indices() {
        let hit = [(); 8].map(|_| AtomicUsize::new(0));
        run_tasks(8, &|i| {
            hit[i].fetch_add(1, Ordering::Relaxed);
        });
        for (i, h) in hit.iter().enumerate() {
            assert_eq!(h.load(Ordering::Relaxed), 1, "task {i}");
        }
    }

    #[test]
    fn for_each_chunk_mut_is_placement_deterministic() {
        for tasks in [1usize, 2, 5, 8] {
            let mut data = vec![0u32; 103];
            for_each_chunk_mut(&mut data, 10, tasks, |offset, chunk| {
                for (i, v) in chunk.iter_mut().enumerate() {
                    *v = (offset + i) as u32;
                }
            });
            let expected: Vec<u32> = (0..103).collect();
            assert_eq!(data, expected, "tasks={tasks}");
        }
    }

    #[test]
    fn map_chunks_preserves_order() {
        let items: Vec<usize> = (0..57).collect();
        for tasks in [1usize, 3, 8] {
            let sums = map_chunks(&items, 7, tasks, |chunk| chunk.iter().sum::<usize>());
            let expected: Vec<usize> = items.chunks(7).map(|c| c.iter().sum()).collect();
            assert_eq!(sums, expected, "tasks={tasks}");
        }
    }

    #[test]
    fn join_returns_both_sides() {
        with_threads(4, || {
            let (a, b) = join(|| 6 * 7, || "ok".to_string());
            assert_eq!(a, 42);
            assert_eq!(b, "ok");
            let (x, y, z) = join3(|| 1, || 2, || 3);
            assert_eq!((x, y, z), (1, 2, 3));
        });
    }

    #[test]
    fn nested_regions_run_serially_without_deadlock() {
        with_threads(4, || {
            let total = AtomicUsize::new(0);
            run_tasks(4, &|_| {
                // Inside a task the advertised width collapses to 1, so
                // kernel dispatch goes serial; a raw nested region still
                // works because waiters help drain the shared queue.
                assert_eq!(effective_threads(), 1);
                run_tasks(4, &|_| {
                    total.fetch_add(1, Ordering::Relaxed);
                });
            });
            assert_eq!(total.load(Ordering::Relaxed), 16);
        });
    }

    #[test]
    fn with_threads_overrides_and_restores() {
        let base = effective_threads();
        with_threads(3, || {
            assert_eq!(effective_threads(), 3);
            with_threads(1, || assert_eq!(effective_threads(), 1));
            assert_eq!(effective_threads(), 3);
        });
        assert_eq!(effective_threads(), base);
    }

    #[test]
    fn panics_propagate_to_the_caller() {
        let result = std::panic::catch_unwind(|| {
            run_tasks(4, &|i| {
                if i == 3 {
                    panic!("boom");
                }
            });
        });
        assert!(result.is_err());
    }
}
