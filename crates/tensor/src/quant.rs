//! Int8 row quantization for serving-time embedding tables.
//!
//! A [`QuantizedMatrix`] stores each row of an `n x d` f32 matrix as `d`
//! signed bytes plus a per-row affine code `(scale, zero_point)`:
//!
//! ```text
//!   value[j] ~= scale * (q[j] + 128 - nzp)        q[j] in [-128, 127]
//! ```
//!
//! where `nzp in [0, 255]` is the *negated* zero point (stored as one
//! byte). The code range always covers zero, so all-equal and all-zero
//! rows round-trip exactly and sparse dot products against padded
//! queries stay well-behaved. Per row the footprint is `d + 5` bytes
//! (`d` codes + `f32` scale + `u8` nzp) versus `4d` for f32 — 3.7× at
//! d=64, 3.9× at the paper's d=128.
//!
//! Scores are computed without dequantizing: the f32 query is quantized
//! once (symmetric, per-query scale) into a [`PreparedQuery`], and each
//! row dot becomes one int8×int8→i32 kernel call ([`dot_i8`], scalar
//! reference + AVX2 routed by backend selection (see [`crate::backend`]),
//! bit-identical — integer arithmetic is exact) plus two multiplies:
//!
//! ```text
//!   dot(row, query) ~= scale * qscale * (Σ q[j]·p[j]  +  off · Σ p[j])
//! ```
//!
//! with `off = 128 - nzp` hoisted out of the sum via the precomputed
//! query element sum. The quantize→dequantize error is at most
//! `scale / 2` per element (proptested), which bounds the dot error by
//! `(scale/2)·‖query‖₁ + (qscale/2)·‖row‖₁`; quantized retrieval is
//! therefore *toleranced*, not bit-identical, against the f32 path.

use bytes::{Buf, BufMut, Bytes, BytesMut};

use crate::backend::{self, MicroArch};
use crate::{Matrix, Result, TensorError};

const MAGIC: &[u8; 4] = b"ATQ8";
const VERSION: u32 = 1;

/// An `n x d` matrix of int8 row codes with per-row affine parameters.
///
/// Rows are quantized as *residuals* against a shared f32 **anchor** row
/// (one `d`-vector for the whole table — amortized to nothing):
/// `value[j] ~= anchor[j] + scale * (q[j] + 128 - nzp)`. Trained
/// embedding tables carry strong shared components (e.g. a popularity
/// bias direction several units long while per-item variation is
/// fractional); anchoring at the column means shrinks each row's value
/// range and therefore its scale — directly tightening the `scale/2`
/// error bound where it matters for rank stability.
/// [`QuantizedMatrix::from_matrix`] anchors at the column means;
/// [`QuantizedMatrix::new`] uses a zero anchor (plain affine rows).
#[derive(Debug, Clone, PartialEq)]
pub struct QuantizedMatrix {
    rows: usize,
    cols: usize,
    anchor: Vec<f32>,
    data: Vec<i8>,
    scales: Vec<f32>,
    /// Negated zero point per row: `zero_point = -(nzp as i32)`.
    nzps: Vec<u8>,
}

/// A query vector quantized once for repeated row dots.
///
/// Two symmetric int8 codes: a coarse part (`value ~= hi_scale * hi[j]`)
/// and a residual part covering what the coarse code dropped
/// (`residual ~= lo_scale * lo[j]`, `lo_scale = hi_scale / 254`). The
/// pair reconstructs the query to within `hi_scale / 508 ≈ max|v| /
/// 64516` per element, so quantized-dot error is dominated by the *row*
/// codes, not the query — at the cost of two int8 kernel calls per row
/// instead of one. Element sums of both parts are precomputed so each
/// row's zero-point correction folds into two multiplies.
#[derive(Debug, Clone, PartialEq)]
pub struct PreparedQuery {
    hi: Vec<i8>,
    lo: Vec<i8>,
    hi_scale: f32,
    lo_scale: f32,
    hi_sum: i32,
    lo_sum: i32,
    /// `dot(anchor, query)` of the table the query was prepared against
    /// — the exact f32 contribution of the shared anchor row, added to
    /// every row dot.
    base: f32,
}

impl PreparedQuery {
    fn build(query: &[f32], base: f32) -> Self {
        let max_abs = query.iter().filter(|v| v.is_finite()).fold(0.0f32, |m, &v| m.max(v.abs()));
        if max_abs <= 0.0 || !max_abs.is_finite() {
            let n = query.len();
            return Self {
                hi: vec![0; n],
                lo: vec![0; n],
                hi_scale: 0.0,
                lo_scale: 0.0,
                hi_sum: 0,
                lo_sum: 0,
                base,
            };
        }
        let hi_scale = max_abs / 127.0;
        let lo_scale = hi_scale / 254.0;
        let mut hi = Vec::with_capacity(query.len());
        let mut lo = Vec::with_capacity(query.len());
        let (mut hi_sum, mut lo_sum) = (0i32, 0i32);
        for &v in query {
            let v = if v.is_finite() { v } else { 0.0 };
            let h = (v / hi_scale).round().clamp(-127.0, 127.0) as i32;
            let r = v - hi_scale * h as f32;
            let l = (r / lo_scale).round().clamp(-127.0, 127.0) as i32;
            hi_sum += h;
            lo_sum += l;
            hi.push(h as i8);
            lo.push(l as i8);
        }
        Self { hi, lo, hi_scale, lo_scale, hi_sum, lo_sum, base }
    }

    /// Query dimensionality.
    pub fn dim(&self) -> usize {
        self.hi.len()
    }

    /// The coarse code scale (0.0 for an all-zero query).
    pub fn scale(&self) -> f32 {
        self.hi_scale
    }
}

impl QuantizedMatrix {
    /// An empty table of width `cols` with a **zero anchor** (plain
    /// per-row affine codes); grow it with [`QuantizedMatrix::push_row`]
    /// (streaming build — the f32 source never needs to be resident all
    /// at once).
    pub fn new(cols: usize) -> Self {
        Self::with_anchor(vec![0.0; cols])
    }

    /// An empty table quantizing rows as residuals against `anchor`
    /// (typically the column means of the source table — see the type
    /// docs). Non-finite anchor entries are treated as 0.
    pub fn with_anchor(mut anchor: Vec<f32>) -> Self {
        for a in anchor.iter_mut() {
            if !a.is_finite() {
                *a = 0.0;
            }
        }
        let cols = anchor.len();
        Self { rows: 0, cols, anchor, data: Vec::new(), scales: Vec::new(), nzps: Vec::new() }
    }

    /// Quantizes every row of `m`, anchored at `m`'s column means.
    pub fn from_matrix(m: &Matrix) -> Self {
        let (n, d) = m.shape();
        let mut acc = vec![0.0f64; d];
        for row in m.iter_rows() {
            for (a, &v) in acc.iter_mut().zip(row) {
                if v.is_finite() {
                    *a += f64::from(v);
                }
            }
        }
        let anchor: Vec<f32> = acc.iter().map(|&a| (a / n.max(1) as f64) as f32).collect();
        let mut out = Self::with_anchor(anchor);
        out.data.reserve(m.len());
        out.scales.reserve(n);
        out.nzps.reserve(n);
        for row in m.iter_rows() {
            out.push_row(row);
        }
        out
    }

    /// Appends one quantized row.
    ///
    /// The affine code is chosen so the representable range covers both
    /// the row's value range and zero: `scale = (max' - min') / 255`
    /// with `min' = min(min, 0)`, `max' = max(max, 0)`, and the zero
    /// point is the integer nearest `min'/scale`. Codes are computed as
    /// `round(clamp(v/scale - zp, 0, 255)) - 128`, which keeps the
    /// per-element reconstruction error at most `scale / 2` with no
    /// clamp overshoot. Non-finite inputs are treated as 0.
    ///
    /// # Panics
    /// Panics on a width mismatch.
    pub fn push_row(&mut self, row: &[f32]) {
        assert_eq!(row.len(), self.cols, "quantized row width mismatch");
        let start = self.data.len();
        self.data.resize(start + self.cols, 0);
        let (scale, nzp) = quantize_row_into(&self.anchor, row, &mut self.data[start..]);
        self.scales.push(scale);
        self.nzps.push(nzp);
        self.rows += 1;
    }

    /// Re-quantizes row `i` in place from its new f32 values, against the
    /// table's **existing** anchor. The affine code is row-local — it
    /// depends only on `row` and the (shared, unchanged) anchor — so the
    /// result is bit-identical to what [`QuantizedMatrix::push_row`]
    /// would have produced for the same values at build time. This is
    /// what makes delta re-quantization exact: updating the rows of a
    /// changed set reproduces, code for code, a full streaming rebuild
    /// over the updated source (with the anchor held fixed).
    ///
    /// # Panics
    /// Panics on a width mismatch or a row index out of range.
    pub fn requantize_row(&mut self, i: usize, row: &[f32]) {
        assert_eq!(row.len(), self.cols, "quantized row width mismatch");
        assert!(i < self.rows, "requantize_row: row {i} out of range ({} rows)", self.rows);
        let start = i * self.cols;
        let (scale, nzp) =
            quantize_row_into(&self.anchor, row, &mut self.data[start..start + self.cols]);
        self.scales[i] = scale;
        self.nzps[i] = nzp;
    }

    /// An exact copy of rows `start..end` (codes, scales, zero points)
    /// sharing this table's anchor values. No re-quantization happens —
    /// concatenating slices reproduces the source table bit for bit.
    ///
    /// # Panics
    /// Panics when `start > end` or `end > rows`.
    pub fn slice_rows(&self, start: usize, end: usize) -> QuantizedMatrix {
        assert!(start <= end && end <= self.rows, "slice_rows range out of bounds");
        QuantizedMatrix {
            rows: end - start,
            cols: self.cols,
            anchor: self.anchor.clone(),
            data: self.data[start * self.cols..end * self.cols].to_vec(),
            scales: self.scales[start..end].to_vec(),
            nzps: self.nzps[start..end].to_vec(),
        }
    }

    /// Appends every row of `other` (codes copied verbatim). Both tables
    /// must share the same width and bit-identical anchors — appending
    /// re-quantizes nothing, so mixed anchors would silently corrupt the
    /// reconstruction.
    ///
    /// # Panics
    /// Panics on a width or anchor mismatch.
    pub fn append_rows(&mut self, other: &QuantizedMatrix) {
        assert_eq!(self.cols, other.cols, "append_rows width mismatch");
        assert!(
            self.anchor.iter().zip(&other.anchor).all(|(a, b)| a.to_bits() == b.to_bits()),
            "append_rows anchor mismatch"
        );
        self.data.extend_from_slice(&other.data);
        self.scales.extend_from_slice(&other.scales);
        self.nzps.extend_from_slice(&other.nzps);
        self.rows += other.rows;
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Row width.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Raw int8 codes of row `i`.
    pub fn row_data(&self, i: usize) -> &[i8] {
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Affine scale of row `i`.
    pub fn row_scale(&self, i: usize) -> f32 {
        self.scales[i]
    }

    /// The additive code offset of row `i`: `value = scale * (code + off)`.
    pub fn row_offset(&self, i: usize) -> i32 {
        128 - self.nzps[i] as i32
    }

    /// The shared anchor row.
    pub fn anchor(&self) -> &[f32] {
        &self.anchor
    }

    /// Resident bytes of the quantized table (codes + per-row params +
    /// the shared anchor row).
    pub fn storage_bytes(&self) -> usize {
        self.data.len() + self.scales.len() * 4 + self.nzps.len() + self.anchor.len() * 4
    }

    /// Bytes the same table occupies as dense f32.
    pub fn f32_bytes(&self) -> usize {
        self.rows * self.cols * 4
    }

    /// Reconstructs row `i` into `out` (`out.len() == cols`).
    pub fn dequantize_row_into(&self, i: usize, out: &mut [f32]) {
        assert_eq!(out.len(), self.cols, "dequantize width mismatch");
        let s = self.scales[i];
        let off = self.row_offset(i);
        for ((o, &c), &a) in out.iter_mut().zip(self.row_data(i)).zip(&self.anchor) {
            *o = a + s * (c as i32 + off) as f32;
        }
    }

    /// Reconstructs the full table as f32 (tests and fallbacks; the
    /// serving paths never materialize this).
    pub fn dequantize(&self) -> Matrix {
        let mut m = Matrix::zeros(self.rows, self.cols);
        for i in 0..self.rows {
            let start = i * self.cols;
            let mut row = vec![0.0; self.cols];
            self.dequantize_row_into(i, &mut row);
            m.as_mut_slice()[start..start + self.cols].copy_from_slice(&row);
        }
        m
    }

    /// Quantizes `query` for repeated row dots against **this** table —
    /// the prepared query carries the exact f32 `dot(anchor, query)`
    /// base term, so it must not be reused against a table with a
    /// different anchor ([`QuantizedMatrix::dot_prepared`] checks the
    /// width; the anchor pairing is the caller's contract).
    pub fn prepare(&self, query: &[f32]) -> PreparedQuery {
        assert_eq!(query.len(), self.cols, "query width mismatch");
        let base = self
            .anchor
            .iter()
            .zip(query)
            .map(|(&a, &q)| if q.is_finite() { a * q } else { 0.0 })
            .sum();
        PreparedQuery::build(query, base)
    }

    /// Approximate `dot(row i, query)` via two int8 kernel calls (the
    /// query's coarse and residual codes) plus the exact anchor term.
    /// Backend selection is resolved once for both kernel calls.
    pub fn dot_prepared(&self, i: usize, query: &PreparedQuery) -> f32 {
        debug_assert_eq!(query.dim(), self.cols, "prepared query width mismatch");
        if query.hi_scale == 0.0 {
            return query.base;
        }
        let arch = backend::current_arch();
        let row = self.row_data(i);
        let off = self.row_offset(i);
        let hi = dot_i8_arch(row, &query.hi, arch) + off * query.hi_sum;
        let lo = dot_i8_arch(row, &query.lo, arch) + off * query.lo_sum;
        query.base + self.scales[i] * (query.hi_scale * hi as f32 + query.lo_scale * lo as f32)
    }

    /// Appends the binary encoding (magic `ATQ8`, version, shape, anchor,
    /// codes, scales, nzps — all little-endian) to `buf`.
    pub fn encode_into(&self, buf: &mut BytesMut) {
        buf.reserve(
            4 + 4
                + 16
                + self.anchor.len() * 4
                + self.data.len()
                + self.scales.len() * 4
                + self.nzps.len(),
        );
        buf.put_slice(MAGIC);
        buf.put_u32_le(VERSION);
        buf.put_u64_le(self.rows as u64);
        buf.put_u64_le(self.cols as u64);
        for &a in &self.anchor {
            buf.put_f32_le(a);
        }
        for &c in &self.data {
            buf.put_u8(c as u8);
        }
        for &s in &self.scales {
            buf.put_f32_le(s);
        }
        buf.put_slice(&self.nzps);
    }

    /// Decodes one quantized table from the front of `buf`, advancing it.
    ///
    /// # Errors
    /// Returns [`TensorError::Corrupt`] on bad magic/version, a
    /// truncated buffer, or a non-positive/non-finite stored scale.
    pub fn decode(buf: &mut Bytes) -> Result<Self> {
        if buf.remaining() < 4 + 4 + 16 {
            return Err(TensorError::Corrupt("quant header truncated"));
        }
        let mut magic = [0u8; 4];
        buf.copy_to_slice(&mut magic);
        if &magic != MAGIC {
            return Err(TensorError::Corrupt("bad quant magic"));
        }
        if buf.get_u32_le() != VERSION {
            return Err(TensorError::Corrupt("unsupported quant version"));
        }
        let rows = buf.get_u64_le() as usize;
        let cols = buf.get_u64_le() as usize;
        let n = rows.checked_mul(cols).ok_or(TensorError::Corrupt("quant shape overflow"))?;
        if buf.remaining() < cols * 4 + n + rows * 4 + rows {
            return Err(TensorError::Corrupt("quant payload truncated"));
        }
        let mut anchor = Vec::with_capacity(cols);
        for _ in 0..cols {
            let a = buf.get_f32_le();
            if !a.is_finite() {
                return Err(TensorError::Corrupt("quant anchor out of range"));
            }
            anchor.push(a);
        }
        let mut data = vec![0i8; n];
        for c in data.iter_mut() {
            *c = buf.get_u8() as i8;
        }
        let mut scales = Vec::with_capacity(rows);
        for _ in 0..rows {
            let s = buf.get_f32_le();
            if s <= 0.0 || !s.is_finite() {
                return Err(TensorError::Corrupt("quant scale out of range"));
            }
            scales.push(s);
        }
        let mut nzps = vec![0u8; rows];
        buf.copy_to_slice(&mut nzps);
        Ok(Self { rows, cols, anchor, data, scales, nzps })
    }
}

/// The per-row affine code: residuals against `anchor`, range covering
/// zero (`scale = (max' - min') / 255`, zero point nearest `min'/scale`),
/// codes `round(clamp(v/scale - zp, 0, 255)) - 128`. Shared by
/// [`QuantizedMatrix::push_row`] (append) and
/// [`QuantizedMatrix::requantize_row`] (in-place) so both produce
/// bit-identical codes for the same values. Non-finite inputs are 0.
fn quantize_row_into(anchor: &[f32], row: &[f32], codes: &mut [i8]) -> (f32, u8) {
    let resid = |v: f32, a: f32| if v.is_finite() { v - a } else { 0.0 };
    let mut lo = 0.0f32;
    let mut hi = 0.0f32;
    for (&v, &a) in row.iter().zip(anchor) {
        let r = resid(v, a);
        lo = lo.min(r);
        hi = hi.max(r);
    }
    let mut scale = (hi - lo) / 255.0;
    if scale <= 0.0 || !scale.is_finite() {
        // Degenerate row (all residuals zero / non-finite): any
        // positive scale reproduces it exactly through code 0.
        scale = 1.0;
    }
    let zp = (lo / scale).round() as i32; // in [-255, 0]
    let nzp = (-zp).clamp(0, 255) as u8;
    for ((&v, &a), c) in row.iter().zip(anchor).zip(codes.iter_mut()) {
        let u = (resid(v, a) / scale - zp as f32).clamp(0.0, 255.0);
        *c = (u.round() as i32 - 128) as i8;
    }
    (scale, nzp)
}

/// Exact int8×int8→i32 dot product, dispatched by backend selection: the
/// scalar backend runs the reference kernel, everything else the AVX2
/// kernel when the cached capability probe allows it. Integer arithmetic:
/// the paths are bit-identical by construction (and pinned by test), so
/// even the fast-math backend serves exact int8 dots.
///
/// # Panics
/// Panics on a length mismatch.
pub fn dot_i8(a: &[i8], b: &[i8]) -> i32 {
    dot_i8_arch(a, b, backend::current_arch())
}

/// [`dot_i8`] with the backend resolution hoisted out — callers issuing
/// several dots per logical op (e.g. [`QuantizedMatrix::dot_prepared`])
/// resolve once.
fn dot_i8_arch(a: &[i8], b: &[i8], arch: MicroArch) -> i32 {
    assert_eq!(a.len(), b.len(), "dot_i8 length mismatch");
    #[cfg(target_arch = "x86_64")]
    if a.len() >= 16 && arch != MicroArch::Scalar {
        // SAFETY: the Avx2/FastMath arch variants only resolve when the
        // capability probe reported AVX2; lengths are equal.
        return unsafe { dot_i8_avx2(a, b) };
    }
    let _ = arch;
    dot_i8_scalar(a, b)
}

/// Scalar reference kernel (the oracle the SIMD path must match).
pub fn dot_i8_scalar(a: &[i8], b: &[i8]) -> i32 {
    a.iter().zip(b).map(|(&x, &y)| x as i32 * y as i32).sum()
}

/// AVX2 kernel: 16 codes per iteration — sign-extend i8→i16, multiply-
/// accumulate pairs into i32 lanes (`maddubs` needs an unsigned operand,
/// `cvtepi8_epi16` + `madd_epi16` keeps both signed; |±127·±127·2| fits
/// i32 with headroom for any realistic dim).
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn dot_i8_avx2(a: &[i8], b: &[i8]) -> i32 {
    use std::arch::x86_64::*;
    let n = a.len();
    let mut acc = _mm256_setzero_si256();
    let mut i = 0;
    while i + 16 <= n {
        let va = _mm_loadu_si128(a.as_ptr().add(i) as *const __m128i);
        let vb = _mm_loadu_si128(b.as_ptr().add(i) as *const __m128i);
        let wa = _mm256_cvtepi8_epi16(va);
        let wb = _mm256_cvtepi8_epi16(vb);
        acc = _mm256_add_epi32(acc, _mm256_madd_epi16(wa, wb));
        i += 16;
    }
    let lo = _mm256_castsi256_si128(acc);
    let hi = _mm256_extracti128_si256(acc, 1);
    let s = _mm_add_epi32(lo, hi);
    let s = _mm_add_epi32(s, _mm_unpackhi_epi64(s, s));
    let s = _mm_add_epi32(s, _mm_shuffle_epi32(s, 0b01));
    let mut total = _mm_cvtsi128_si32(s);
    while i < n {
        total += *a.get_unchecked(i) as i32 * *b.get_unchecked(i) as i32;
        i += 1;
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Rng64;

    fn random_matrix(rows: usize, cols: usize, seed: u64) -> Matrix {
        let mut rng = Rng64::seed_from_u64(seed);
        Matrix::from_fn(rows, cols, |_, _| rng.normal_with(0.1, 1.3))
    }

    #[test]
    fn round_trip_error_is_within_half_scale() {
        let m = random_matrix(64, 33, 7);
        let q = QuantizedMatrix::from_matrix(&m);
        for i in 0..m.rows() {
            let mut back = vec![0.0; m.cols()];
            q.dequantize_row_into(i, &mut back);
            let tol = q.row_scale(i) * 0.5 * (1.0 + 1e-4);
            for (a, b) in m.row(i).iter().zip(&back) {
                assert!((a - b).abs() <= tol, "row {i}: {a} vs {b} (tol {tol})");
            }
        }
    }

    #[test]
    fn all_equal_and_zero_rows_round_trip_exactly() {
        let m = Matrix::from_rows(&[
            &[5.0f32, 5.0, 5.0, 5.0],
            &[0.0, 0.0, 0.0, 0.0],
            &[-3.25, -3.25, -3.25, -3.25],
        ])
        .unwrap();
        let q = QuantizedMatrix::from_matrix(&m);
        let back = q.dequantize();
        for i in 0..m.rows() {
            for j in 0..m.cols() {
                let (a, b) = (m.get(i, j), back.get(i, j));
                assert!((a - b).abs() <= 1e-5 * a.abs().max(1.0), "({i},{j}): {a} vs {b}");
            }
        }
    }

    #[test]
    fn prepared_dot_tracks_f32_dot() {
        let m = random_matrix(200, 48, 11);
        let mut rng = Rng64::seed_from_u64(99);
        let query: Vec<f32> = (0..48).map(|_| rng.normal()).collect();
        let q = QuantizedMatrix::from_matrix(&m);
        let prep = q.prepare(&query);
        let l1q: f32 = query.iter().map(|v| v.abs()).sum();
        for i in 0..m.rows() {
            let exact = crate::dot(m.row(i), &query);
            let approx = q.dot_prepared(i, &prep);
            let l1r: f32 = m.row(i).iter().map(|v| v.abs()).sum();
            let tol = 0.5 * q.row_scale(i) * l1q + 0.5 * prep.scale() * l1r + 1e-3;
            assert!((exact - approx).abs() <= tol, "row {i}: {exact} vs {approx} (tol {tol})");
        }
    }

    #[test]
    fn zero_query_dots_are_exactly_zero() {
        let m = random_matrix(4, 16, 3);
        let q = QuantizedMatrix::from_matrix(&m);
        let prep = q.prepare(&[0.0; 16]);
        for i in 0..4 {
            assert_eq!(q.dot_prepared(i, &prep), 0.0);
        }
    }

    #[test]
    fn anchoring_shrinks_scales_on_shared_component_tables() {
        // Rows = big shared vector + small per-row noise, the structure
        // trained embedding tables actually have. The anchored codes must
        // carry materially smaller scales (tighter error bounds) than
        // plain affine codes, and the anchored prepared dot must track
        // the exact f32 dot more tightly.
        let mut rng = Rng64::seed_from_u64(17);
        let d = 32;
        let shared: Vec<f32> = (0..d).map(|_| rng.normal_with(0.0, 3.0)).collect();
        let m = Matrix::from_fn(128, d, |_, j| shared[j] + 0.05 * rng_cell(&mut rng));
        fn rng_cell(rng: &mut Rng64) -> f32 {
            rng.normal()
        }
        let anchored = QuantizedMatrix::from_matrix(&m);
        let mut plain = QuantizedMatrix::new(d);
        for row in m.iter_rows() {
            plain.push_row(row);
        }
        let mean = |q: &QuantizedMatrix| {
            (0..q.rows()).map(|i| q.row_scale(i) as f64).sum::<f64>() / q.rows() as f64
        };
        assert!(
            mean(&anchored) < mean(&plain) / 4.0,
            "anchored {} vs plain {}",
            mean(&anchored),
            mean(&plain)
        );
    }

    #[test]
    fn avx2_kernel_matches_scalar_bitwise() {
        let mut rng = Rng64::seed_from_u64(42);
        for len in [1usize, 15, 16, 17, 31, 32, 48, 63, 64, 127, 1000] {
            let a: Vec<i8> = (0..len).map(|_| rng.next_u64() as i8).collect();
            let b: Vec<i8> = (0..len).map(|_| rng.next_u64() as i8).collect();
            assert_eq!(dot_i8(&a, &b), dot_i8_scalar(&a, &b), "len {len}");
        }
        // Saturation corners.
        let a = vec![-128i8; 64];
        let b = vec![-128i8; 64];
        assert_eq!(dot_i8(&a, &b), 64 * 128 * 128);
        let c = vec![127i8; 64];
        assert_eq!(dot_i8(&a, &c), -64 * 128 * 127);
    }

    #[test]
    fn encode_decode_round_trips() {
        let m = random_matrix(17, 9, 5);
        let q = QuantizedMatrix::from_matrix(&m);
        let mut buf = BytesMut::new();
        q.encode_into(&mut buf);
        let mut bytes = buf.freeze();
        let back = QuantizedMatrix::decode(&mut bytes).unwrap();
        assert_eq!(q, back);
        assert_eq!(bytes.remaining(), 0);
    }

    #[test]
    fn decode_rejects_truncation_and_bad_magic() {
        let q = QuantizedMatrix::from_matrix(&random_matrix(3, 4, 1));
        let mut buf = BytesMut::new();
        q.encode_into(&mut buf);
        let full = buf.freeze();
        let mut truncated = full.slice(0..full.len() - 1);
        assert!(QuantizedMatrix::decode(&mut truncated).is_err());
        let mut garbled = BytesMut::from(&full[..]);
        garbled[0] ^= 0xff;
        assert!(QuantizedMatrix::decode(&mut garbled.freeze()).is_err());
    }

    #[test]
    fn requantize_row_matches_a_frozen_anchor_rebuild_bitwise() {
        // Mutate a changed set S of rows, requantize only S in place, and
        // compare against streaming the whole updated matrix through
        // push_row with the *original* anchor held fixed. Row codes are
        // row-local, so the two must agree code for code — the exactness
        // claim delta publishes rely on.
        let m = random_matrix(40, 19, 21);
        let mut q = QuantizedMatrix::from_matrix(&m);
        let mut updated = m.clone();
        let mut rng = Rng64::seed_from_u64(5);
        let changed: Vec<usize> = vec![0, 7, 13, 14, 39];
        for &i in &changed {
            for j in 0..updated.cols() {
                updated.set(i, j, rng.normal_with(-0.2, 2.0));
            }
        }
        for &i in &changed {
            q.requantize_row(i, updated.row(i));
        }
        let mut oracle = QuantizedMatrix::with_anchor(q.anchor().to_vec());
        for row in updated.iter_rows() {
            oracle.push_row(row);
        }
        assert_eq!(q, oracle);
    }

    #[test]
    fn slice_and_append_round_trip_the_table_bitwise() {
        let m = random_matrix(23, 8, 9);
        let q = QuantizedMatrix::from_matrix(&m);
        let mut rebuilt = q.slice_rows(0, 10);
        rebuilt.append_rows(&q.slice_rows(10, 17));
        rebuilt.append_rows(&q.slice_rows(17, 23));
        assert_eq!(q, rebuilt);
        assert_eq!(q.slice_rows(5, 5).rows(), 0);
    }

    #[test]
    fn storage_is_at_least_3_5x_smaller_at_dim_64() {
        let q = QuantizedMatrix::from_matrix(&random_matrix(100, 64, 2));
        let ratio = q.f32_bytes() as f64 / q.storage_bytes() as f64;
        assert!(ratio >= 3.5, "ratio {ratio}");
    }
}
