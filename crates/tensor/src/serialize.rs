//! Binary (de)serialization of matrices.
//!
//! Format (little-endian): magic `b"ATMX"`, `u32` version, `u64` rows,
//! `u64` cols, then `rows*cols` `f32` values. The sanctioned dependency
//! list has no serde *format* crate, so model checkpoints use this
//! hand-rolled length-checked layout on top of `bytes`.

use bytes::{Buf, BufMut, Bytes, BytesMut};

use crate::{Matrix, Result, TensorError};

const MAGIC: &[u8; 4] = b"ATMX";
const VERSION: u32 = 1;

/// Appends the binary encoding of `m` to `buf`.
pub fn encode_matrix(m: &Matrix, buf: &mut BytesMut) {
    buf.reserve(4 + 4 + 16 + m.len() * 4);
    buf.put_slice(MAGIC);
    buf.put_u32_le(VERSION);
    buf.put_u64_le(m.rows() as u64);
    buf.put_u64_le(m.cols() as u64);
    for &v in m.as_slice() {
        buf.put_f32_le(v);
    }
}

/// Decodes one matrix from the front of `buf`, advancing it.
///
/// # Errors
/// Returns [`TensorError::Corrupt`] on a bad magic/version or a truncated
/// buffer.
pub fn decode_matrix(buf: &mut Bytes) -> Result<Matrix> {
    if buf.remaining() < 4 + 4 + 16 {
        return Err(TensorError::Corrupt("header truncated"));
    }
    let mut magic = [0u8; 4];
    buf.copy_to_slice(&mut magic);
    if &magic != MAGIC {
        return Err(TensorError::Corrupt("bad magic"));
    }
    if buf.get_u32_le() != VERSION {
        return Err(TensorError::Corrupt("unsupported version"));
    }
    let rows = buf.get_u64_le() as usize;
    let cols = buf.get_u64_le() as usize;
    let n = rows.checked_mul(cols).ok_or(TensorError::Corrupt("shape overflow"))?;
    if buf.remaining() < n * 4 {
        return Err(TensorError::Corrupt("payload truncated"));
    }
    let mut data = Vec::with_capacity(n);
    for _ in 0..n {
        data.push(buf.get_f32_le());
    }
    Matrix::from_vec(rows, cols, data)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Rng64;

    #[test]
    fn roundtrip_preserves_matrix() {
        let mut rng = Rng64::seed_from_u64(2);
        let m = crate::Init::Normal(1.0).sample(7, 5, &mut rng);
        let mut buf = BytesMut::new();
        encode_matrix(&m, &mut buf);
        let mut bytes = buf.freeze();
        let back = decode_matrix(&mut bytes).unwrap();
        assert_eq!(back, m);
        assert_eq!(bytes.remaining(), 0);
    }

    #[test]
    fn roundtrip_multiple_matrices() {
        let a = Matrix::from_fn(2, 3, |i, j| (i + j) as f32);
        let b = Matrix::identity(4);
        let mut buf = BytesMut::new();
        encode_matrix(&a, &mut buf);
        encode_matrix(&b, &mut buf);
        let mut bytes = buf.freeze();
        assert_eq!(decode_matrix(&mut bytes).unwrap(), a);
        assert_eq!(decode_matrix(&mut bytes).unwrap(), b);
    }

    #[test]
    fn rejects_bad_magic() {
        let mut bytes = Bytes::from_static(b"NOPE\x01\x00\x00\x00aaaaaaaabbbbbbbb");
        assert!(matches!(decode_matrix(&mut bytes), Err(TensorError::Corrupt(_))));
    }

    #[test]
    fn rejects_truncation() {
        let m = Matrix::full(3, 3, 1.0);
        let mut buf = BytesMut::new();
        encode_matrix(&m, &mut buf);
        let full = buf.freeze();
        for cut in [0usize, 3, 10, 23, full.len() - 1] {
            let mut prefix = full.slice(0..cut);
            assert!(decode_matrix(&mut prefix).is_err(), "cut={cut}");
        }
    }

    #[test]
    fn empty_matrix_roundtrips() {
        let m = Matrix::zeros(0, 5);
        let mut buf = BytesMut::new();
        encode_matrix(&m, &mut buf);
        let back = decode_matrix(&mut buf.freeze()).unwrap();
        assert_eq!(back.shape(), (0, 5));
    }
}
