//! Concurrency primitives for hot-swappable shared state.
//!
//! [`SwapCell`] is the publish/subscribe cell the serving stack is built
//! on: readers take an [`Arc`] snapshot of the current value, writers
//! publish a replacement atomically. Neither side ever copies the payload —
//! a read is one refcount bump, a publish is one pointer swap — so a
//! multi-megabyte model snapshot costs the same to hand out as a counter.
//!
//! The cell is backed by a `Mutex<Arc<T>>` whose critical sections contain
//! *only* the refcount bump (load) or the pointer exchange (publish): no
//! allocation, no payload clone, no drop runs under the lock. Readers can
//! therefore never be blocked behind a publisher doing real work — the
//! expensive parts (building the new value, dropping the old one) happen
//! entirely outside the lock.

use std::sync::{Arc, Mutex};

/// An atomically swappable shared value.
///
/// ```
/// use atnn_tensor::SwapCell;
/// let cell = SwapCell::new(vec![1.0f32; 1024]);
/// let snap = cell.load();           // refcount bump, no copy
/// cell.publish(vec![2.0f32; 1024]); // pointer swap
/// assert_eq!(snap[0], 1.0);         // old snapshot stays valid
/// assert_eq!(cell.load()[0], 2.0);
/// ```
#[derive(Debug)]
pub struct SwapCell<T> {
    current: Mutex<Arc<T>>,
}

impl<T> SwapCell<T> {
    /// Wraps an initial value.
    pub fn new(value: T) -> Self {
        SwapCell { current: Mutex::new(Arc::new(value)) }
    }

    /// Wraps an already-shared value.
    pub fn from_arc(value: Arc<T>) -> Self {
        SwapCell { current: Mutex::new(value) }
    }

    /// A snapshot of the current value. Never copies `T`; the snapshot
    /// stays valid (and unchanged) across later [`publish`](Self::publish)
    /// calls.
    pub fn load(&self) -> Arc<T> {
        self.current.lock().expect("SwapCell lock poisoned").clone()
    }

    /// Atomically replaces the current value, returning the previous
    /// snapshot. The old value is *returned*, not dropped, so its
    /// destructor never runs under the cell's lock.
    pub fn publish(&self, value: T) -> Arc<T> {
        self.publish_arc(Arc::new(value))
    }

    /// [`publish`](Self::publish) for a value that is already shared.
    pub fn publish_arc(&self, value: Arc<T>) -> Arc<T> {
        let mut guard = self.current.lock().expect("SwapCell lock poisoned");
        std::mem::replace(&mut *guard, value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicBool, Ordering};

    #[test]
    fn load_returns_shared_not_copied_value() {
        let cell = SwapCell::new(vec![7u8; 16]);
        let a = cell.load();
        let b = cell.load();
        assert!(Arc::ptr_eq(&a, &b), "loads between publishes must share one allocation");
    }

    #[test]
    fn publish_swaps_and_returns_previous() {
        let cell = SwapCell::new(1);
        let old = cell.publish(2);
        assert_eq!((*old, *cell.load()), (1, 2));
    }

    #[test]
    fn snapshots_survive_publish() {
        let cell = SwapCell::new(String::from("old"));
        let snap = cell.load();
        cell.publish(String::from("new"));
        assert_eq!(*snap, "old");
        assert_eq!(*cell.load(), "new");
    }

    #[test]
    fn concurrent_loads_and_publishes_are_consistent() {
        let cell = Arc::new(SwapCell::new(0u64));
        let stop = Arc::new(AtomicBool::new(false));
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let cell = Arc::clone(&cell);
                let stop = Arc::clone(&stop);
                scope.spawn(move || {
                    let mut last = 0u64;
                    while !stop.load(Ordering::Relaxed) {
                        let v = *cell.load();
                        assert!(v >= last, "snapshots must be monotone: {v} < {last}");
                        last = v;
                    }
                });
            }
            for v in 1..=1000u64 {
                cell.publish(v);
            }
            stop.store(true, Ordering::Relaxed);
        });
        assert_eq!(*cell.load(), 1000);
    }
}
