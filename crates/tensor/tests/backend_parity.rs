//! Cross-backend parity suite for the pluggable compute backends.
//!
//! The contract (see the `backend` module docs):
//!
//! - `Avx2Backend` is **bit-identical** to `ScalarBackend` — the oracle —
//!   on the full kernel surface: every matmul variant, the fused
//!   `linear_bias_act` epilogue, and the int8 dot kernels. Pinned here by
//!   proptest across rim-straddling shapes, through the `&dyn Backend`
//!   trait surface so backend dispatch itself is exercised.
//! - `FastMathBackend` is **toleranced**: its GEMM stays within
//!   [`FASTMATH_REL_TOL`] relative error of an f64 reference (the same
//!   order as inherent f32 accumulation error, which the scalar oracle is
//!   held to as well). Its int8 kernels are exact integer arithmetic and
//!   must match the oracle bitwise.
//! - `with_backend` scopes propagate to pool workers, so a scope covers
//!   parallel kernels and pooled evaluation.

use atnn_tensor::{
    backend_of, cpu_caps, current_backend_kind, pool, with_backend, ActKind, Backend, BackendKind,
    Matrix, PreparedQuery, QuantizedMatrix,
};
use proptest::prelude::*;

/// The stated fast-math GEMM bound: relative to the sum of absolute
/// products per output element (robust under cancellation). FMA rounds
/// each product once instead of twice and splits the k-sum in two, so the
/// error stays within a small multiple of f32 accumulation noise.
const FASTMATH_REL_TOL: f64 = 1e-4;

/// Deterministic splitmix value with ~1/8 exact zeros (matches the other
/// kernel property suites).
fn val(seed: u64, i: usize, j: usize) -> f32 {
    let mut z = seed
        ^ (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)
        ^ (j as u64).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^= z >> 31;
    if z.is_multiple_of(8) {
        0.0
    } else {
        ((z >> 40) & 0xFF_FFFF) as f32 / (1u64 << 23) as f32 - 1.0
    }
}

fn test_matrix(rows: usize, cols: usize, seed: u64) -> Matrix {
    Matrix::from_fn(rows, cols, |i, j| val(seed, i, j))
}

/// Dimension draws spanning the small/tiled dispatch boundary and the
/// register-tile rims.
fn dim() -> impl Strategy<Value = usize> {
    prop_oneof![1usize..10, 30usize..42, 126usize..131]
}

fn act_kind() -> impl Strategy<Value = ActKind> {
    prop_oneof![
        Just(ActKind::Identity),
        Just(ActKind::Relu),
        Just(ActKind::LeakyRelu(0.01)),
        Just(ActKind::Tanh),
        Just(ActKind::Sigmoid),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Avx2Backend == ScalarBackend bitwise on every matmul variant,
    /// through the trait surface.
    #[test]
    fn avx2_matches_scalar_bitwise_on_matmul_family(
        (m, k, n) in (dim(), dim(), dim()),
        seed in any::<u64>(),
    ) {
        let scalar: &dyn Backend = backend_of(BackendKind::Scalar);
        let avx2: &dyn Backend = backend_of(BackendKind::Avx2);
        let a = test_matrix(m, k, seed);
        let b = test_matrix(k, n, seed.wrapping_add(1));
        let at = a.transpose();
        let bt = b.transpose();
        pool::with_threads(1, || {
            prop_assert_eq!(
                &scalar.matmul(&a, &b).unwrap(),
                &avx2.matmul(&a, &b).unwrap(),
                "nn m={} k={} n={}", m, k, n
            );
            prop_assert_eq!(
                &scalar.matmul_tn(&at, &b).unwrap(),
                &avx2.matmul_tn(&at, &b).unwrap(),
                "tn m={} k={} n={}", m, k, n
            );
            prop_assert_eq!(
                &scalar.matmul_nt(&a, &bt).unwrap(),
                &avx2.matmul_nt(&a, &bt).unwrap(),
                "nt m={} k={} n={}", m, k, n
            );
            let mut s_out = Matrix::zeros(m, n);
            let mut w_out = Matrix::zeros(m, n);
            scalar.matmul_into(&a, &b, &mut s_out).unwrap();
            avx2.matmul_into(&a, &b, &mut w_out).unwrap();
            prop_assert_eq!(&s_out, &w_out, "into m={} k={} n={}", m, k, n);
            Ok(())
        })?;
    }

    /// Avx2Backend == ScalarBackend bitwise on the fused epilogue, for
    /// every activation kind.
    #[test]
    fn avx2_matches_scalar_bitwise_on_fused_epilogue(
        (m, k, n) in (dim(), dim(), dim()),
        act in act_kind(),
        with_bias in any::<bool>(),
        seed in any::<u64>(),
    ) {
        let scalar: &dyn Backend = backend_of(BackendKind::Scalar);
        let avx2: &dyn Backend = backend_of(BackendKind::Avx2);
        let x = test_matrix(m, k, seed);
        let w = test_matrix(k, n, seed.wrapping_add(1));
        let bias = test_matrix(1, n, seed.wrapping_add(2));
        let bias_opt = with_bias.then_some(&bias);
        pool::with_threads(1, || {
            prop_assert_eq!(
                &scalar.linear_bias_act(&x, &w, bias_opt, act).unwrap(),
                &avx2.linear_bias_act(&x, &w, bias_opt, act).unwrap(),
                "act={:?} bias={}", act, with_bias
            );
            Ok(())
        })?;
    }

    /// The int8 kernels are exact integer arithmetic: bit-identical on
    /// *all three* backends, including fast-math, at every length around
    /// the 16-lane SIMD boundary.
    #[test]
    fn dot_i8_is_bit_identical_on_every_backend(
        a in collection::vec(any::<i8>(), 0..96),
        extra in collection::vec(any::<i8>(), 0..96),
    ) {
        let b: Vec<i8> = a.iter().zip(extra.iter().chain(std::iter::repeat(&-128)))
            .map(|(&x, &y)| x.wrapping_add(y))
            .collect();
        let oracle = backend_of(BackendKind::Scalar).dot_i8(&a, &b);
        for kind in [BackendKind::Avx2, BackendKind::FastMath] {
            prop_assert_eq!(backend_of(kind).dot_i8(&a, &b), oracle, "kind={}", kind);
        }
    }

    /// FastMathBackend GEMM stays within the stated relative-error bound
    /// of an f64 reference on tiled shapes — and the scalar oracle is held
    /// to the same bound, pinning that fast-math error is of the same
    /// order as inherent f32 accumulation noise.
    #[test]
    fn fastmath_gemm_within_stated_tolerance_of_f64_reference(
        (m, k, n) in (8usize..48, 48usize..300, 8usize..48),
        seed in any::<u64>(),
    ) {
        let a = test_matrix(m, k, seed);
        let b = test_matrix(k, n, seed.wrapping_add(1));
        let fast = pool::with_threads(1, || {
            backend_of(BackendKind::FastMath).matmul(&a, &b).unwrap()
        });
        let scalar = pool::with_threads(1, || {
            backend_of(BackendKind::Scalar).matmul(&a, &b).unwrap()
        });
        for i in 0..m {
            for j in 0..n {
                let mut reference = 0.0f64;
                let mut scale = 0.0f64;
                for p in 0..k {
                    let prod = a.get(i, p) as f64 * b.get(p, j) as f64;
                    reference += prod;
                    scale += prod.abs();
                }
                let tol = FASTMATH_REL_TOL * scale + 1e-12;
                let f = fast.get(i, j) as f64;
                let s = scalar.get(i, j) as f64;
                prop_assert!(
                    (f - reference).abs() <= tol,
                    "fastmath ({},{}): got {} want {} (tol {})", i, j, f, reference, tol
                );
                prop_assert!(
                    (s - reference).abs() <= tol,
                    "scalar ({},{}): got {} want {} (tol {})", i, j, s, reference, tol
                );
            }
        }
    }
}

/// `dot_prepared` (two int8 kernel calls + exact anchor term) is
/// bit-identical across all three backends — the serving quantized-score
/// path may switch backends without moving a single score.
#[test]
fn dot_prepared_is_bit_identical_on_every_backend() {
    let table = QuantizedMatrix::from_matrix(&test_matrix(64, 96, 1234));
    let queries: Vec<PreparedQuery> = (0..8)
        .map(|q| {
            let v: Vec<f32> = (0..96).map(|j| val(q as u64 + 9000, q, j)).collect();
            table.prepare(&v)
        })
        .collect();
    for row in 0..64 {
        for query in &queries {
            let oracle = with_backend(BackendKind::Scalar, || table.dot_prepared(row, query));
            for kind in [BackendKind::Avx2, BackendKind::FastMath] {
                let got = with_backend(kind, || table.dot_prepared(row, query));
                assert_eq!(got.to_bits(), oracle.to_bits(), "row={row} kind={kind}");
            }
        }
    }
}

/// A `with_backend` scope must follow work onto pool workers: every task
/// of a parallel region sees the submitting thread's selection, and the
/// worker's own state is restored afterwards.
#[test]
fn with_backend_scope_propagates_to_pool_workers() {
    use std::sync::Mutex;
    // Scope a kind that differs from the ambient default, whatever
    // `ATNN_BACKEND` the suite runs under (check.sh runs it under several).
    let scoped = if atnn_tensor::process_backend() == BackendKind::Scalar {
        BackendKind::FastMath
    } else {
        BackendKind::Scalar
    };
    let seen: Mutex<Vec<BackendKind>> = Mutex::new(Vec::new());
    pool::with_threads(4, || {
        with_backend(scoped, || {
            pool::run_tasks(4, &|_idx| {
                seen.lock().unwrap().push(current_backend_kind());
            });
        });
        // Outside the scope the same workers must no longer see it.
        pool::run_tasks(4, &|_idx| {
            assert_ne!(current_backend_kind(), scoped, "scope leaked onto a pool worker");
        });
    });
    let seen = seen.into_inner().unwrap();
    assert_eq!(seen.len(), 4);
    assert!(
        seen.iter().all(|&k| k == scoped),
        "every task must inherit the scoped backend: {seen:?}"
    );
}

/// Fast-math results are deterministic: each output element is a pure
/// function of its `k` sequence, so row-sharded parallel execution is
/// bit-identical to serial *within* the fast-math backend — and (on FMA
/// hosts) measurably different from the oracle, proving the scoped
/// backend actually reached the kernels.
#[test]
fn fastmath_is_deterministic_across_task_counts() {
    let a = test_matrix(96, 160, 51);
    let b = test_matrix(160, 96, 52);
    let serial =
        pool::with_threads(1, || with_backend(BackendKind::FastMath, || a.matmul(&b).unwrap()));
    for tasks in [2usize, 3, 7] {
        let parallel = pool::with_threads(8, || {
            with_backend(BackendKind::FastMath, || a.matmul_parallel(&b, tasks).unwrap())
        });
        assert_eq!(parallel, serial, "fastmath parallel != serial at tasks={tasks}");
    }
    let caps = cpu_caps();
    if caps.avx2 && caps.fma {
        let oracle = with_backend(BackendKind::Scalar, || a.matmul(&b).unwrap());
        assert_ne!(
            serial, oracle,
            "fast-math on an FMA host should differ from the oracle in some low bits \
             (if it never does, the backend is not reaching the microkernel)"
        );
    }
}
