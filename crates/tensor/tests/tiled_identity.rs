//! Property tests: the register-tiled GEMM is **bit-identical** to the
//! naive i-k-j reference across adversarial shapes — degenerate 1×N / N×1,
//! sizes straddling the small/tiled dispatch boundary, and sizes straddling
//! every blocking rim (`MR`/`NR` micro-tile, `MC` row block, `KC` k-slab,
//! `NC` column panel) — and the fused `linear_bias_act` epilogue is
//! bit-identical to the unfused matmul → bias → activation sweeps.
//!
//! Together with `parallel_kernels.rs` (parallel == serial) this pins the
//! whole kernel-dispatch lattice to one reference semantics.

use atnn_tensor::{pool, ActKind, Matrix};
use proptest::prelude::*;

/// Deterministic value for element `(i, j)` with ~1/8 exact zeros, so the
/// naive kernel's zero-skip path is exercised against the tiled path
/// (which has no skip — the skip is bitwise-neutral for finite inputs).
fn val(seed: u64, i: usize, j: usize) -> f32 {
    let mut z = seed
        ^ (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)
        ^ (j as u64).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^= z >> 31;
    if z.is_multiple_of(8) {
        0.0
    } else {
        ((z >> 40) & 0xFF_FFFF) as f32 / (1u64 << 23) as f32 - 1.0
    }
}

fn test_matrix(rows: usize, cols: usize, seed: u64) -> Matrix {
    Matrix::from_fn(rows, cols, |i, j| val(seed, i, j))
}

/// One dimension draw: degenerate, around the 4/8 register-tile rims,
/// straddling the small/tiled work boundary (32³), and (rarely) straddling
/// the MC=128 / KC=256 / NC=256 outer-block rims.
fn dim() -> impl Strategy<Value = usize> {
    prop_oneof![1usize..10, 1usize..10, 30usize..42, 30usize..42, 126usize..131, 255usize..259,]
}

fn act_kind() -> impl Strategy<Value = ActKind> {
    prop_oneof![
        Just(ActKind::Identity),
        Just(ActKind::Relu),
        Just(ActKind::LeakyRelu(0.01)),
        Just(ActKind::Tanh),
        Just(ActKind::Sigmoid),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// nn: `a @ b` (whatever path dispatch picks) == naive reference.
    #[test]
    fn tiled_matmul_matches_naive((m, k, n) in (dim(), dim(), dim()), seed in any::<u64>()) {
        let a = test_matrix(m, k, seed);
        let b = test_matrix(k, n, seed.wrapping_add(1));
        let fast = pool::with_threads(1, || a.matmul(&b)).unwrap();
        prop_assert_eq!(&fast, &a.matmul_naive(&b));
    }

    /// tn: packing from the transposed source == materialized transpose.
    #[test]
    fn tiled_matmul_tn_matches_naive((m, k, n) in (dim(), dim(), dim()), seed in any::<u64>()) {
        let at = test_matrix(k, m, seed); // aᵀ stored
        let b = test_matrix(k, n, seed.wrapping_add(1));
        let fast = pool::with_threads(1, || at.matmul_tn(&b)).unwrap();
        prop_assert_eq!(&fast, &at.transpose().matmul_naive(&b));
    }

    /// nt: packing from the transposed source == materialized transpose.
    #[test]
    fn tiled_matmul_nt_matches_naive((m, k, n) in (dim(), dim(), dim()), seed in any::<u64>()) {
        let a = test_matrix(m, k, seed);
        let bt = test_matrix(n, k, seed.wrapping_add(1)); // bᵀ stored
        let fast = pool::with_threads(1, || a.matmul_nt(&bt)).unwrap();
        prop_assert_eq!(&fast, &a.matmul_naive(&bt.transpose()));
    }

    /// Fused matmul+bias+activation == the three separate sweeps, for every
    /// activation kind, with and without bias, on rim-straddling shapes.
    #[test]
    fn fused_linear_bias_act_matches_unfused(
        (m, k, n) in (dim(), dim(), dim()),
        act in act_kind(),
        with_bias in any::<bool>(),
        seed in any::<u64>(),
    ) {
        let x = test_matrix(m, k, seed);
        let w = test_matrix(k, n, seed.wrapping_add(1));
        let bias = test_matrix(1, n, seed.wrapping_add(2));
        let bias_opt = with_bias.then_some(&bias);
        let fused = pool::with_threads(1, || x.linear_bias_act(&w, bias_opt, act)).unwrap();
        let mut expect = x.matmul_naive(&w);
        if with_bias {
            expect = expect.add_row_broadcast(&bias).unwrap();
        }
        let expect = expect.map(|v| act.apply(v));
        prop_assert_eq!(&fused, &expect);
    }
}
