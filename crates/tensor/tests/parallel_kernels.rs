//! Property tests: the row-sharded parallel matmul family is bit-identical
//! to the serial kernels across random shapes (including degenerate 1×N,
//! N×1, and empty-adjacent cases) and task counts 1–8.
//!
//! Bit-identity (not approximate equality) is the contract the training
//! determinism guarantee is built on: `assert_eq!` on `Matrix` compares
//! every f32 exactly.

use atnn_tensor::{pool, Matrix};
use proptest::prelude::*;

/// Pure deterministic value for element `(i, j)`: a SplitMix64-style hash
/// mapped into `[-1, 1)`, with ~1/8 of entries exactly zero so the
/// kernels' zero-skip path is exercised.
fn val(seed: u64, i: usize, j: usize) -> f32 {
    let mut z = seed
        ^ (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)
        ^ (j as u64).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^= z >> 31;
    if z.is_multiple_of(8) {
        0.0
    } else {
        ((z >> 40) & 0xFF_FFFF) as f32 / (1u64 << 23) as f32 - 1.0
    }
}

fn test_matrix(rows: usize, cols: usize, seed: u64) -> Matrix {
    Matrix::from_fn(rows, cols, |i, j| val(seed, i, j))
}

/// `(m, k, n)` shapes: a general small box plus the degenerate families —
/// zero-dimension (empty-adjacent), single-row, single-column, and
/// single-output-column — and a band that crosses `PAR_MIN_WORK`-style
/// row counts.
fn shapes() -> impl Strategy<Value = (usize, usize, usize)> {
    prop_oneof![
        (0usize..12, 0usize..12, 0usize..12),
        (Just(1usize), 1usize..48, 1usize..8),
        (1usize..48, Just(1usize), 1usize..8),
        (1usize..48, 1usize..8, Just(1usize)),
        (13usize..40, 13usize..40, 13usize..40),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn matmul_parallel_is_bit_identical(
        (m, k, n) in shapes(),
        tasks in 1usize..9,
        seed in any::<u64>(),
    ) {
        let a = test_matrix(m, k, seed);
        let b = test_matrix(k, n, seed.wrapping_add(1));
        let serial = pool::with_threads(1, || a.matmul(&b)).unwrap();
        // Explicit task count, bypassing the work-size heuristic.
        prop_assert_eq!(&a.matmul_parallel(&b, tasks).unwrap(), &serial);
        // Auto dispatch under an overridden pool width.
        let auto = pool::with_threads(tasks, || a.matmul(&b)).unwrap();
        prop_assert_eq!(&auto, &serial);
    }

    #[test]
    fn matmul_tn_parallel_is_bit_identical(
        (m, k, n) in shapes(),
        tasks in 1usize..9,
        seed in any::<u64>(),
    ) {
        // matmul_tn: (k x m)ᵀ @ (k x n) -> (m x n).
        let a = test_matrix(k, m, seed);
        let b = test_matrix(k, n, seed.wrapping_add(1));
        let serial = pool::with_threads(1, || a.matmul_tn(&b)).unwrap();
        prop_assert_eq!(&a.matmul_tn_parallel(&b, tasks).unwrap(), &serial);
        let auto = pool::with_threads(tasks, || a.matmul_tn(&b)).unwrap();
        prop_assert_eq!(&auto, &serial);
    }

    #[test]
    fn matmul_nt_parallel_is_bit_identical(
        (m, k, n) in shapes(),
        tasks in 1usize..9,
        seed in any::<u64>(),
    ) {
        // matmul_nt: (m x k) @ (n x k)ᵀ -> (m x n).
        let a = test_matrix(m, k, seed);
        let b = test_matrix(n, k, seed.wrapping_add(1));
        let serial = pool::with_threads(1, || a.matmul_nt(&b)).unwrap();
        prop_assert_eq!(&a.matmul_nt_parallel(&b, tasks).unwrap(), &serial);
        let auto = pool::with_threads(tasks, || a.matmul_nt(&b)).unwrap();
        prop_assert_eq!(&auto, &serial);
    }
}

/// The dispatch heuristic must also be exercised above `PAR_MIN_WORK`:
/// a shape big enough to auto-fork still matches the pinned-serial run.
#[test]
fn auto_dispatch_above_threshold_is_bit_identical() {
    // 96 * 96 * 96 = 884736 > PAR_MIN_WORK (1 << 19).
    let a = test_matrix(96, 96, 11);
    let b = test_matrix(96, 96, 12);
    let serial = pool::with_threads(1, || a.matmul(&b)).unwrap();
    for threads in [2usize, 4, 8] {
        let par = pool::with_threads(threads, || a.matmul(&b)).unwrap();
        assert_eq!(par, serial, "threads={threads}");
    }
}
