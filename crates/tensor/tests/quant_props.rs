//! Property tests for the int8 row codec: the quantize→dequantize error
//! bound (≤ scale/2 per element), exact round-trips for degenerate
//! rows, and bit-identity of the SIMD int8 dot kernel.

use atnn_tensor::{dot_i8, dot_i8_scalar, QuantizedMatrix};
use proptest::collection;
use proptest::strategy::Strategy;
use proptest::test_runner::TestRng;

#[test]
fn proptest_dequantize_error_is_at_most_half_scale() {
    // Rows mix magnitudes across six orders so tiny and huge scales both
    // get exercised; the bound must hold per element for every row.
    let strategy = (
        1usize..24,                                  // dim
        collection::vec(-1000.0f32..1000.0, 1..=24), // base values
        collection::vec(-5i32..6, 1..=24),           // per-element decade shift
    );
    let mut rng = TestRng::from_name("proptest_dequantize_error_is_at_most_half_scale");
    for case in 0..256 {
        let (d, base, decades) = strategy.sample(&mut rng);
        let row: Vec<f32> =
            (0..d).map(|j| base[j % base.len()] * 10f32.powi(decades[j % decades.len()])).collect();
        let mut q = QuantizedMatrix::new(d);
        q.push_row(&row);
        let mut back = vec![0.0; d];
        q.dequantize_row_into(0, &mut back);
        let tol = q.row_scale(0) * 0.5 * (1.0 + 1e-4) + f32::MIN_POSITIVE;
        for (j, (a, b)) in row.iter().zip(&back).enumerate() {
            assert!(
                (a - b).abs() <= tol,
                "case {case} elem {j}: {a} vs {b} (scale {}, tol {tol})",
                q.row_scale(0)
            );
        }
    }
}

#[test]
fn proptest_constant_and_zero_rows_round_trip_exactly() {
    let strategy = (1usize..48, -1.0e4f32..1.0e4);
    let mut rng = TestRng::from_name("proptest_constant_and_zero_rows_round_trip_exactly");
    for case in 0..128 {
        let (d, v) = strategy.sample(&mut rng);
        for value in [v, 0.0f32] {
            let mut q = QuantizedMatrix::new(d);
            q.push_row(&vec![value; d]);
            let mut back = vec![0.0; d];
            q.dequantize_row_into(0, &mut back);
            for b in &back {
                // A constant row's range is [min(v,0), max(v,0)]; v sits on
                // the code grid's endpoint, so it reconstructs within one
                // float rounding of scale*255 — effectively exact.
                assert!(
                    (b - value).abs() <= value.abs() * 1e-5,
                    "case {case}: constant {value} came back {b}"
                );
            }
        }
    }
}

#[test]
fn proptest_dot_kernel_is_bit_identical_across_dispatch() {
    let strategy = collection::vec(-128i32..128, 1..=300);
    let mut rng = TestRng::from_name("proptest_dot_kernel_is_bit_identical_across_dispatch");
    for case in 0..128 {
        let a: Vec<i8> = strategy.sample(&mut rng).iter().map(|&v| v as i8).collect();
        let b: Vec<i8> =
            strategy.sample(&mut rng).iter().cycle().take(a.len()).map(|&v| v as i8).collect();
        assert_eq!(dot_i8(&a, &b), dot_i8_scalar(&a, &b), "case {case} len {}", a.len());
    }
}

#[test]
fn proptest_prepared_dot_error_is_within_analytic_bound() {
    // |dot_q - dot_f| ≤ (row_scale/2)·‖q‖₁ + (query_scale/2)·‖row‖₁ plus
    // float-summation slack.
    let strategy = (1usize..32, collection::vec(-50.0f32..50.0, 1..=32));
    let mut rng = TestRng::from_name("proptest_prepared_dot_error_is_within_analytic_bound");
    for case in 0..128 {
        let (d, vals) = strategy.sample(&mut rng);
        let row: Vec<f32> = (0..d).map(|j| vals[j % vals.len()]).collect();
        let query: Vec<f32> = (0..d).map(|j| vals[(j * 7 + 3) % vals.len()] * 0.1).collect();
        // Zero anchor: the bound below is for the plain affine code; an
        // anchored table only tightens it (smaller scales, exact base).
        let mut q = QuantizedMatrix::new(d);
        q.push_row(&row);
        let prep = q.prepare(&query);
        let exact: f32 = row.iter().zip(&query).map(|(a, b)| a * b).sum();
        let approx = q.dot_prepared(0, &prep);
        let l1q: f32 = query.iter().map(|v| v.abs()).sum();
        let l1r: f32 = row.iter().map(|v| v.abs()).sum();
        let tol = 0.5 * q.row_scale(0) * l1q * (1.0 + 1e-3)
            + 0.5 * prep.scale() * l1r * (1.0 + 1e-3)
            + 1e-3;
        assert!((exact - approx).abs() <= tol, "case {case}: {exact} vs {approx} (tol {tol})");
    }
}
