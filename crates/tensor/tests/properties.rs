//! Property-based tests for the tensor algebra.

use atnn_tensor::{Matrix, Rng64};
use proptest::prelude::*;

/// Strategy: a matrix with the given shape and bounded values.
fn matrix(rows: usize, cols: usize) -> impl Strategy<Value = Matrix> {
    proptest::collection::vec(-100.0f32..100.0, rows * cols)
        .prop_map(move |data| Matrix::from_vec(rows, cols, data).unwrap())
}

fn shapes() -> impl Strategy<Value = (usize, usize, usize)> {
    (1usize..8, 1usize..8, 1usize..8)
}

fn approx_eq(a: &Matrix, b: &Matrix, tol: f32) -> bool {
    a.shape() == b.shape()
        && a.as_slice()
            .iter()
            .zip(b.as_slice())
            .all(|(&x, &y)| (x - y).abs() <= tol * (1.0 + x.abs().max(y.abs())))
}

proptest! {
    #[test]
    fn add_commutes((r, c, _) in shapes(), seed in 0u64..1000) {
        let mut rng = Rng64::seed_from_u64(seed);
        let a = atnn_tensor::Init::Normal(5.0).sample(r, c, &mut rng);
        let b = atnn_tensor::Init::Normal(5.0).sample(r, c, &mut rng);
        prop_assert_eq!(a.add(&b).unwrap(), b.add(&a).unwrap());
    }

    #[test]
    fn matmul_identity_is_noop((r, c, _) in shapes(), m in (1usize..6).prop_flat_map(|r| matrix(r, 4))) {
        let _ = (r, c);
        let id = Matrix::identity(4);
        prop_assert!(approx_eq(&m.matmul(&id).unwrap(), &m, 1e-5));
    }

    #[test]
    fn matmul_distributes_over_add((m, k, n) in shapes(), seed in 0u64..1000) {
        let mut rng = Rng64::seed_from_u64(seed);
        let a = atnn_tensor::Init::Normal(1.0).sample(m, k, &mut rng);
        let b = atnn_tensor::Init::Normal(1.0).sample(k, n, &mut rng);
        let c = atnn_tensor::Init::Normal(1.0).sample(k, n, &mut rng);
        let lhs = a.matmul(&b.add(&c).unwrap()).unwrap();
        let rhs = a.matmul(&b).unwrap().add(&a.matmul(&c).unwrap()).unwrap();
        prop_assert!(approx_eq(&lhs, &rhs, 1e-4));
    }

    #[test]
    fn transpose_respects_matmul((m, k, n) in shapes(), seed in 0u64..1000) {
        // (A B)^T == B^T A^T
        let mut rng = Rng64::seed_from_u64(seed);
        let a = atnn_tensor::Init::Normal(1.0).sample(m, k, &mut rng);
        let b = atnn_tensor::Init::Normal(1.0).sample(k, n, &mut rng);
        let lhs = a.matmul(&b).unwrap().transpose();
        let rhs = b.transpose().matmul(&a.transpose()).unwrap();
        prop_assert!(approx_eq(&lhs, &rhs, 1e-4));
    }

    #[test]
    fn tn_and_nt_agree_with_naive((m, k, n) in shapes(), seed in 0u64..1000) {
        let mut rng = Rng64::seed_from_u64(seed);
        let a = atnn_tensor::Init::Normal(1.0).sample(k, m, &mut rng);
        let b = atnn_tensor::Init::Normal(1.0).sample(k, n, &mut rng);
        prop_assert!(approx_eq(
            &a.matmul_tn(&b).unwrap(),
            &a.transpose().matmul(&b).unwrap(),
            1e-4
        ));
        let c = atnn_tensor::Init::Normal(1.0).sample(m, k, &mut rng);
        let d = atnn_tensor::Init::Normal(1.0).sample(n, k, &mut rng);
        prop_assert!(approx_eq(
            &c.matmul_nt(&d).unwrap(),
            &c.matmul(&d.transpose()).unwrap(),
            1e-4
        ));
    }

    #[test]
    fn sum_rows_then_sum_equals_sum(m in (1usize..7, 1usize..7).prop_flat_map(|(r, c)| matrix(r, c))) {
        let total = m.sum();
        let via_rows = m.sum_rows().sum();
        let via_cols = m.sum_cols().sum();
        prop_assert!((total - via_rows).abs() < 1e-2 * (1.0 + total.abs()));
        prop_assert!((total - via_cols).abs() < 1e-2 * (1.0 + total.abs()));
    }

    #[test]
    fn select_rows_matches_manual(indices in proptest::collection::vec(0u32..5, 1..10)) {
        let m = Matrix::from_fn(5, 3, |i, j| (i * 10 + j) as f32);
        let g = m.select_rows(&indices).unwrap();
        for (dst, &idx) in indices.iter().enumerate() {
            prop_assert_eq!(g.row(dst), m.row(idx as usize));
        }
    }

    #[test]
    fn serialization_roundtrip(m in (1usize..6, 1usize..6).prop_flat_map(|(r, c)| matrix(r, c))) {
        let mut buf = bytes::BytesMut::new();
        atnn_tensor::encode_matrix(&m, &mut buf);
        let back = atnn_tensor::decode_matrix(&mut buf.freeze()).unwrap();
        prop_assert_eq!(back, m);
    }
}
