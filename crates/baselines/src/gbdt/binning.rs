//! Quantile binning: re-encode `f32` features as dense `u8` bin ids.

use atnn_tensor::Matrix;

/// A binned feature matrix: one byte per value, row-major.
#[derive(Debug, Clone)]
pub struct BinnedMatrix {
    data: Vec<u8>,
    rows: usize,
    cols: usize,
}

impl BinnedMatrix {
    /// One row of bin ids.
    #[inline]
    pub fn row(&self, i: usize) -> &[u8] {
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of feature columns.
    pub fn cols(&self) -> usize {
        self.cols
    }
}

/// Per-feature quantile bin boundaries fit on training data.
///
/// Feature `f` maps value `v` to the number of boundaries `< v` — i.e.
/// boundary list `[t0, t1, …]` produces bins `(-inf, t0], (t0, t1], …`.
/// Unseen test values fall into the nearest edge bin automatically.
#[derive(Debug, Clone)]
pub struct BinMapper {
    /// `boundaries[f]` = sorted upper-exclusive thresholds for feature `f`.
    boundaries: Vec<Vec<f32>>,
}

impl BinMapper {
    /// Fits quantile boundaries with at most `max_bins` bins per feature.
    ///
    /// # Panics
    /// Panics when `max_bins < 2` or `max_bins > 256` (bin ids are `u8`).
    pub fn fit(x: &Matrix, max_bins: usize) -> Self {
        assert!((2..=256).contains(&max_bins), "max_bins must be in 2..=256");
        let mut boundaries = Vec::with_capacity(x.cols());
        let mut column = Vec::with_capacity(x.rows());
        for f in 0..x.cols() {
            column.clear();
            column.extend((0..x.rows()).map(|i| x.get(i, f)));
            column.sort_by(|a, b| a.partial_cmp(b).expect("NaN feature value"));
            let mut bounds = Vec::with_capacity(max_bins - 1);
            for b in 1..max_bins {
                let q = b * column.len() / max_bins;
                let t = column[q.min(column.len() - 1)];
                if bounds.last().is_none_or(|&last| t > last) {
                    bounds.push(t);
                }
            }
            boundaries.push(bounds);
        }
        BinMapper { boundaries }
    }

    /// Bins a matrix with the fitted boundaries.
    ///
    /// # Panics
    /// Panics when the width differs from the fitted data.
    pub fn transform(&self, x: &Matrix) -> BinnedMatrix {
        assert_eq!(x.cols(), self.boundaries.len(), "BinMapper width mismatch");
        let mut data = Vec::with_capacity(x.rows() * x.cols());
        for i in 0..x.rows() {
            for (f, bounds) in self.boundaries.iter().enumerate() {
                data.push(bin_of(x.get(i, f), bounds));
            }
        }
        BinnedMatrix { data, rows: x.rows(), cols: x.cols() }
    }

    /// Number of features.
    pub fn num_features(&self) -> usize {
        self.boundaries.len()
    }
}

#[inline]
fn bin_of(v: f32, bounds: &[f32]) -> u8 {
    // partition_point = count of boundaries < v (strictly), so a value
    // equal to a boundary lands in the bin *below* it: bins are (t0, t1].
    bounds.partition_point(|&t| t < v) as u8
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_data_fills_all_bins() {
        let x = Matrix::from_fn(100, 1, |i, _| i as f32);
        let mapper = BinMapper::fit(&x, 4);
        let binned = mapper.transform(&x);
        let mut seen = [false; 4];
        for i in 0..100 {
            seen[binned.row(i)[0] as usize] = true;
        }
        assert_eq!(seen, [true; 4]);
        // Binning is monotone in the raw value.
        for i in 1..100 {
            assert!(binned.row(i)[0] >= binned.row(i - 1)[0]);
        }
    }

    #[test]
    fn constant_feature_collapses_to_one_bin() {
        let x = Matrix::full(50, 1, 3.3);
        let mapper = BinMapper::fit(&x, 16);
        let binned = mapper.transform(&x);
        for i in 0..50 {
            assert_eq!(binned.row(i)[0], binned.row(0)[0]);
        }
    }

    #[test]
    fn out_of_range_test_values_clamp_to_edge_bins() {
        let train = Matrix::from_fn(10, 1, |i, _| i as f32); // 0..9
        let mapper = BinMapper::fit(&train, 4);
        let test = Matrix::from_rows(&[&[-100.0], &[100.0]]).unwrap();
        let binned = mapper.transform(&test);
        assert_eq!(binned.row(0)[0], 0);
        assert_eq!(binned.row(1)[0] as usize, 3);
    }

    #[test]
    fn binned_matrix_shape() {
        let x = Matrix::zeros(7, 3);
        let mapper = BinMapper::fit(&x, 8);
        let b = mapper.transform(&x);
        assert_eq!((b.rows(), b.cols()), (7, 3));
        assert_eq!(mapper.num_features(), 3);
    }

    #[test]
    #[should_panic(expected = "max_bins")]
    fn rejects_too_many_bins() {
        let _ = BinMapper::fit(&Matrix::zeros(2, 1), 300);
    }
}
