//! Single regression tree: histogram split search and prediction.

use super::binning::BinnedMatrix;

/// One node of a [`Tree`].
#[derive(Debug, Clone)]
pub enum Node {
    /// Internal split: go left when `bin <= threshold_bin`.
    Split {
        /// Feature column index.
        feature: u32,
        /// Inclusive left-branch bin threshold.
        threshold_bin: u8,
        /// Left child node index.
        left: u32,
        /// Right child node index.
        right: u32,
    },
    /// Terminal node carrying the output value (before shrinkage).
    Leaf {
        /// Newton leaf value `-G / (H + λ)`.
        value: f32,
    },
}

/// A trained regression tree over binned features.
#[derive(Debug, Clone)]
pub struct Tree {
    nodes: Vec<Node>,
}

impl Tree {
    /// Predicts the leaf value for one binned feature row.
    pub fn predict_binned(&self, row: &[u8]) -> f32 {
        let mut at = 0usize;
        loop {
            match &self.nodes[at] {
                Node::Leaf { value } => return *value,
                Node::Split { feature, threshold_bin, left, right } => {
                    at = if row[*feature as usize] <= *threshold_bin {
                        *left as usize
                    } else {
                        *right as usize
                    };
                }
            }
        }
    }

    /// Adds 1 to `counts[f]` for every split on feature `f`.
    pub fn count_splits(&self, counts: &mut [u32]) {
        for node in &self.nodes {
            if let Node::Split { feature, .. } = node {
                counts[*feature as usize] += 1;
            }
        }
    }

    /// Number of nodes (splits + leaves).
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }
}

/// Borrowed context for growing one tree.
#[derive(Debug)]
pub struct TreeGrower<'a> {
    /// Binned training features.
    pub binned: &'a BinnedMatrix,
    /// Histogram width (max bins per feature).
    pub num_bins: usize,
    /// Per-sample gradient of the loss at the current margin.
    pub grad: &'a [f32],
    /// Per-sample hessian of the loss at the current margin.
    pub hess: &'a [f32],
    /// L2 regularization on leaf values.
    pub lambda: f32,
    /// Minimum hessian mass per child.
    pub min_child_weight: f32,
    /// Minimum accepted split gain.
    pub min_gain: f32,
    /// Maximum depth (root = 0).
    pub max_depth: usize,
}

struct BestSplit {
    feature: u32,
    threshold_bin: u8,
    gain: f32,
}

impl TreeGrower<'_> {
    /// Grows a tree on the given row subset, considering only `cols`.
    pub fn grow(&self, rows: &[u32], cols: &[u32]) -> Tree {
        let mut nodes = Vec::new();
        self.grow_node(rows.to_vec(), cols, 0, &mut nodes);
        Tree { nodes }
    }

    fn grow_node(&self, rows: Vec<u32>, cols: &[u32], depth: usize, nodes: &mut Vec<Node>) -> u32 {
        let (g_sum, h_sum) = rows.iter().fold((0.0f64, 0.0f64), |(g, h), &r| {
            (g + self.grad[r as usize] as f64, h + self.hess[r as usize] as f64)
        });

        let make_leaf = |nodes: &mut Vec<Node>| {
            let value = (-g_sum / (h_sum + self.lambda as f64)) as f32;
            nodes.push(Node::Leaf { value });
            (nodes.len() - 1) as u32
        };

        if depth >= self.max_depth || rows.len() < 2 {
            return make_leaf(nodes);
        }
        let Some(best) = self.best_split(&rows, cols, g_sum, h_sum) else {
            return make_leaf(nodes);
        };

        let (left_rows, right_rows): (Vec<u32>, Vec<u32>) = rows.into_iter().partition(|&r| {
            self.binned.row(r as usize)[best.feature as usize] <= best.threshold_bin
        });
        debug_assert!(!left_rows.is_empty() && !right_rows.is_empty());

        // Reserve this node's slot, then grow children.
        let slot = nodes.len();
        nodes.push(Node::Leaf { value: 0.0 }); // placeholder
        let left = self.grow_node(left_rows, cols, depth + 1, nodes);
        let right = self.grow_node(right_rows, cols, depth + 1, nodes);
        nodes[slot] =
            Node::Split { feature: best.feature, threshold_bin: best.threshold_bin, left, right };
        slot as u32
    }

    fn best_split(&self, rows: &[u32], cols: &[u32], g_sum: f64, h_sum: f64) -> Option<BestSplit> {
        let lambda = self.lambda as f64;
        let parent_score = g_sum * g_sum / (h_sum + lambda);
        let mut best: Option<BestSplit> = None;

        // One histogram reused across features to avoid reallocation.
        let mut hist_g = vec![0.0f64; self.num_bins];
        let mut hist_h = vec![0.0f64; self.num_bins];
        for &f in cols {
            hist_g.iter_mut().for_each(|v| *v = 0.0);
            hist_h.iter_mut().for_each(|v| *v = 0.0);
            for &r in rows {
                let bin = self.binned.row(r as usize)[f as usize] as usize;
                hist_g[bin] += self.grad[r as usize] as f64;
                hist_h[bin] += self.hess[r as usize] as f64;
            }
            let mut gl = 0.0f64;
            let mut hl = 0.0f64;
            for bin in 0..self.num_bins - 1 {
                gl += hist_g[bin];
                hl += hist_h[bin];
                if hl < self.min_child_weight as f64 {
                    continue;
                }
                let hr = h_sum - hl;
                if hr < self.min_child_weight as f64 {
                    break; // hl only grows; right side can't recover
                }
                let gr = g_sum - gl;
                let gain = 0.5 * (gl * gl / (hl + lambda) + gr * gr / (hr + lambda) - parent_score);
                if gain > self.min_gain as f64 && best.as_ref().is_none_or(|b| gain > b.gain as f64)
                {
                    best =
                        Some(BestSplit { feature: f, threshold_bin: bin as u8, gain: gain as f32 });
                }
            }
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gbdt::binning::BinMapper;
    use atnn_tensor::Matrix;

    /// A stump must find the obvious threshold on a step function.
    #[test]
    fn stump_finds_step_threshold() {
        let n = 100;
        let x = Matrix::from_fn(n, 1, |i, _| i as f32);
        // grad = p - y at p = 0.5: y=1 right of 60, y=0 left.
        let grad: Vec<f32> = (0..n).map(|i| if i >= 60 { -0.5 } else { 0.5 }).collect();
        let hess = vec![0.25f32; n];
        let mapper = BinMapper::fit(&x, 32);
        let binned = mapper.transform(&x);
        let grower = TreeGrower {
            binned: &binned,
            num_bins: 32,
            grad: &grad,
            hess: &hess,
            lambda: 1.0,
            min_child_weight: 1.0,
            min_gain: 1e-6,
            max_depth: 1,
        };
        let rows: Vec<u32> = (0..n as u32).collect();
        let tree = grower.grow(&rows, &[0]);
        assert_eq!(tree.num_nodes(), 3, "one split, two leaves");
        // Left leaf negative region (y=0 -> positive grad -> negative value),
        // right leaf positive.
        let left_pred = tree.predict_binned(binned.row(0));
        let right_pred = tree.predict_binned(binned.row(99));
        assert!(left_pred < 0.0 && right_pred > 0.0, "{left_pred} {right_pred}");
        // Boundary is respected within one bin's resolution.
        let p59 = tree.predict_binned(binned.row(59));
        let p63 = tree.predict_binned(binned.row(63));
        assert!(p59 < 0.0 && p63 > 0.0);
    }

    #[test]
    fn no_signal_yields_single_leaf() {
        let x = Matrix::from_fn(40, 2, |i, j| ((i * 3 + j) % 7) as f32);
        let grad = vec![0.5f32; 40]; // identical gradients: no useful split
        let hess = vec![0.25f32; 40];
        let mapper = BinMapper::fit(&x, 8);
        let binned = mapper.transform(&x);
        let grower = TreeGrower {
            binned: &binned,
            num_bins: 8,
            grad: &grad,
            hess: &hess,
            lambda: 1.0,
            min_child_weight: 1.0,
            min_gain: 1e-6,
            max_depth: 4,
        };
        let rows: Vec<u32> = (0..40).collect();
        let tree = grower.grow(&rows, &[0, 1]);
        assert_eq!(tree.num_nodes(), 1, "gain is zero everywhere");
    }

    #[test]
    fn depth_zero_is_a_single_newton_leaf() {
        let x = Matrix::from_fn(10, 1, |i, _| i as f32);
        let grad = vec![-1.0f32; 10];
        let hess = vec![1.0f32; 10];
        let mapper = BinMapper::fit(&x, 4);
        let binned = mapper.transform(&x);
        let grower = TreeGrower {
            binned: &binned,
            num_bins: 4,
            grad: &grad,
            hess: &hess,
            lambda: 0.0,
            min_child_weight: 0.0,
            min_gain: 1e-6,
            max_depth: 0,
        };
        let rows: Vec<u32> = (0..10).collect();
        let tree = grower.grow(&rows, &[0]);
        // -G/H = 10/10 = 1
        assert!((tree.predict_binned(binned.row(0)) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn min_child_weight_blocks_tiny_splits() {
        let x = Matrix::from_fn(10, 1, |i, _| i as f32);
        // Only sample 9 wants to separate.
        let grad: Vec<f32> = (0..10).map(|i| if i == 9 { -0.5 } else { 0.5 }).collect();
        let hess = vec![0.25f32; 10];
        let mapper = BinMapper::fit(&x, 16);
        let binned = mapper.transform(&x);
        let grower = TreeGrower {
            binned: &binned,
            num_bins: 16,
            grad: &grad,
            hess: &hess,
            lambda: 1.0,
            min_child_weight: 1.0, // one sample has hess 0.25 < 1.0
            min_gain: 1e-6,
            max_depth: 3,
        };
        let rows: Vec<u32> = (0..10).collect();
        let tree = grower.grow(&rows, &[0]);
        // Isolating the single dissenting sample requires a child with
        // hessian mass 0.25 < min_child_weight, so that split is rejected:
        // samples 8 and 9 must land in the same leaf.
        assert_eq!(
            tree.predict_binned(binned.row(8)),
            tree.predict_binned(binned.row(9)),
            "min_child_weight must forbid peeling off one sample"
        );
    }
}
