//! Histogram gradient-boosted decision trees (Friedman 2001).
//!
//! The training pipeline mirrors modern GBDT systems at small scale:
//! 1. [`binning`] quantile-bins every feature into ≤ `max_bins` buckets and
//!    re-encodes the matrix as `u8` bin ids (cache-dense, one byte/value);
//! 2. each boosting round computes per-sample gradients/hessians of the
//!    objective at the current prediction margin;
//! 3. [`tree`] grows a depth-wise tree: each node accumulates per-feature
//!    gradient histograms and picks the split with the best XGBoost-style
//!    gain `½[G_L²/(H_L+λ) + G_R²/(H_R+λ) − G²/(H+λ)]`;
//! 4. leaf values `−G/(H+λ)`, shrunk by the learning rate, are added to
//!    the margin.

pub mod binning;
pub mod tree;

use atnn_tensor::{Matrix, Rng64};

use binning::BinMapper;
use tree::{Tree, TreeGrower};

/// Training objective.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Objective {
    /// Binary logistic loss; predictions are probabilities.
    Logistic,
    /// Squared error; predictions are raw values.
    SquaredError,
}

/// GBDT hyper-parameters.
#[derive(Debug, Clone)]
pub struct GbdtConfig {
    /// Boosting rounds.
    pub num_trees: usize,
    /// Maximum tree depth (root = depth 0).
    pub max_depth: usize,
    /// Shrinkage applied to every leaf.
    pub learning_rate: f32,
    /// L2 regularization on leaf values (XGBoost's λ).
    pub lambda: f32,
    /// Minimum hessian sum per child (XGBoost's `min_child_weight`).
    pub min_child_weight: f32,
    /// Minimum gain to accept a split.
    pub min_gain: f32,
    /// Histogram resolution per feature.
    pub max_bins: usize,
    /// Row subsample fraction per tree.
    pub subsample: f32,
    /// Feature subsample fraction per tree.
    pub colsample: f32,
    /// Objective.
    pub objective: Objective,
    /// Seed for sub-sampling.
    pub seed: u64,
}

impl Default for GbdtConfig {
    fn default() -> Self {
        GbdtConfig {
            num_trees: 60,
            max_depth: 5,
            learning_rate: 0.15,
            lambda: 1.0,
            min_child_weight: 1.0,
            min_gain: 1e-6,
            max_bins: 64,
            subsample: 0.9,
            colsample: 0.9,
            objective: Objective::Logistic,
            seed: 17,
        }
    }
}

/// A trained gradient-boosted ensemble.
#[derive(Debug, Clone)]
pub struct Gbdt {
    config: GbdtConfig,
    mapper: BinMapper,
    trees: Vec<Tree>,
    base_score: f32,
    train_curve: Vec<f64>,
}

impl Gbdt {
    /// Fits with early stopping: after each round the validation loss is
    /// measured; when it fails to improve for `patience` consecutive
    /// rounds, boosting stops and the ensemble is truncated to the best
    /// round.
    ///
    /// # Panics
    /// Panics on empty/mismatched training or validation data.
    pub fn fit_with_validation(
        config: GbdtConfig,
        x: &Matrix,
        y: &[f32],
        x_val: &Matrix,
        y_val: &[f32],
        patience: usize,
    ) -> Self {
        assert!(x_val.rows() > 0, "empty validation set");
        assert_eq!(x_val.rows(), y_val.len(), "validation feature/label mismatch");
        let mut model = Self::fit(config, x, y);
        // Walk the ensemble prefix by prefix, tracking validation loss.
        let binned_val = model.mapper.transform(x_val);
        let mut margins: Vec<f32> = vec![model.base_score; x_val.rows()];
        let mut best_len = 0usize;
        let mut best_loss = model.validation_loss(&margins, y_val);
        let mut since_best = 0usize;
        for (t, tree) in model.trees.iter().enumerate() {
            for (i, m) in margins.iter_mut().enumerate() {
                *m += model.config.learning_rate * tree.predict_binned(binned_val.row(i));
            }
            let loss = model.validation_loss(&margins, y_val);
            if loss < best_loss {
                best_loss = loss;
                best_len = t + 1;
                since_best = 0;
            } else {
                since_best += 1;
                if since_best > patience {
                    break;
                }
            }
        }
        model.trees.truncate(best_len.max(1));
        model.train_curve.truncate(model.trees.len());
        model
    }

    fn validation_loss(&self, margins: &[f32], y: &[f32]) -> f64 {
        margins
            .iter()
            .zip(y)
            .map(|(&m, &t)| match self.config.objective {
                Objective::Logistic => {
                    let p = (sigmoid(m) as f64).clamp(1e-7, 1.0 - 1e-7);
                    if t > 0.5 {
                        -p.ln()
                    } else {
                        -(1.0 - p).ln()
                    }
                }
                Objective::SquaredError => {
                    let d = (m - t) as f64;
                    0.5 * d * d
                }
            })
            .sum::<f64>()
            / margins.len().max(1) as f64
    }

    /// Fits an ensemble on dense features `x` (`[n, d]`) and targets `y`
    /// (`0/1` for [`Objective::Logistic`], real for
    /// [`Objective::SquaredError`]).
    ///
    /// # Panics
    /// Panics when `x` is empty or `y.len() != x.rows()`.
    pub fn fit(config: GbdtConfig, x: &Matrix, y: &[f32]) -> Self {
        assert!(x.rows() > 0, "Gbdt::fit on empty data");
        assert_eq!(x.rows(), y.len(), "Gbdt::fit: feature/label mismatch");
        let mut rng = Rng64::seed_from_u64(config.seed);
        let mapper = BinMapper::fit(x, config.max_bins);
        let binned = mapper.transform(x);
        let n = x.rows();

        // Base margin: log-odds of the positive rate / the mean target.
        let mean = y.iter().sum::<f32>() / n as f32;
        let base_score = match config.objective {
            Objective::Logistic => {
                let p = mean.clamp(1e-5, 1.0 - 1e-5);
                (p / (1.0 - p)).ln()
            }
            Objective::SquaredError => mean,
        };

        let mut margins = vec![base_score; n];
        let mut grad = vec![0.0f32; n];
        let mut hess = vec![0.0f32; n];
        let mut trees = Vec::with_capacity(config.num_trees);
        let mut train_curve = Vec::with_capacity(config.num_trees);

        for _ in 0..config.num_trees {
            let mut loss_acc = 0.0f64;
            for (((&margin, &target), g), h) in margins.iter().zip(y).zip(&mut grad).zip(&mut hess)
            {
                match config.objective {
                    Objective::Logistic => {
                        let p = sigmoid(margin);
                        *g = p - target;
                        *h = (p * (1.0 - p)).max(1e-6);
                        let pc = (p as f64).clamp(1e-7, 1.0 - 1e-7);
                        loss_acc -= if target > 0.5 { pc.ln() } else { (1.0 - pc).ln() };
                    }
                    Objective::SquaredError => {
                        let d = margin - target;
                        *g = d;
                        *h = 1.0;
                        loss_acc += 0.5 * (d as f64) * (d as f64);
                    }
                }
            }
            train_curve.push(loss_acc / n as f64);

            let rows = sample_indices(n, config.subsample, &mut rng);
            let cols = sample_indices(x.cols(), config.colsample, &mut rng);
            let grower = TreeGrower {
                binned: &binned,
                num_bins: config.max_bins,
                grad: &grad,
                hess: &hess,
                lambda: config.lambda,
                min_child_weight: config.min_child_weight,
                min_gain: config.min_gain,
                max_depth: config.max_depth,
            };
            let tree = grower.grow(&rows, &cols);
            // Update margins with the new tree's (shrunk) predictions.
            for (i, margin) in margins.iter_mut().enumerate() {
                *margin += config.learning_rate * tree.predict_binned(binned.row(i));
            }
            trees.push(tree);
        }

        Gbdt { config, mapper, trees, base_score, train_curve }
    }

    /// Predicts for each row: probability ([`Objective::Logistic`]) or raw
    /// value ([`Objective::SquaredError`]).
    pub fn predict(&self, x: &Matrix) -> Vec<f32> {
        let binned = self.mapper.transform(x);
        (0..x.rows())
            .map(|i| {
                let row = binned.row(i);
                let margin = self.base_score
                    + self.config.learning_rate
                        * self.trees.iter().map(|t| t.predict_binned(row)).sum::<f32>();
                match self.config.objective {
                    Objective::Logistic => sigmoid(margin),
                    Objective::SquaredError => margin,
                }
            })
            .collect()
    }

    /// Per-round mean training loss (should be non-increasing).
    pub fn train_curve(&self) -> &[f64] {
        &self.train_curve
    }

    /// Number of trees in the ensemble.
    pub fn num_trees(&self) -> usize {
        self.trees.len()
    }

    /// Split-count feature importance.
    pub fn feature_importance(&self, num_features: usize) -> Vec<u32> {
        let mut counts = vec![0u32; num_features];
        for t in &self.trees {
            t.count_splits(&mut counts);
        }
        counts
    }
}

fn sigmoid(x: f32) -> f32 {
    if x >= 0.0 {
        1.0 / (1.0 + (-x).exp())
    } else {
        let e = x.exp();
        e / (1.0 + e)
    }
}

fn sample_indices(n: usize, fraction: f32, rng: &mut Rng64) -> Vec<u32> {
    if fraction >= 1.0 {
        return (0..n as u32).collect();
    }
    let take = ((n as f32 * fraction).round() as usize).clamp(1, n);
    let mut idx: Vec<u32> = (0..n as u32).collect();
    rng.shuffle(&mut idx);
    idx.truncate(take);
    idx.sort_unstable(); // keep row scans cache-friendly
    idx
}

#[cfg(test)]
mod tests {
    use super::*;

    fn xor_data(n: usize) -> (Matrix, Vec<f32>) {
        // Noisy XOR in 2D plus a junk feature.
        let mut rng = Rng64::seed_from_u64(3);
        let mut rows = Vec::with_capacity(n);
        let mut y = Vec::with_capacity(n);
        for _ in 0..n {
            let a = rng.uniform();
            let b = rng.uniform();
            rows.push([a, b, rng.uniform()]);
            y.push(if (a > 0.5) != (b > 0.5) { 1.0 } else { 0.0 });
        }
        let flat: Vec<f32> = rows.iter().flatten().copied().collect();
        (Matrix::from_vec(n, 3, flat).unwrap(), y)
    }

    #[test]
    fn learns_xor() {
        let (x, y) = xor_data(600);
        let model = Gbdt::fit(GbdtConfig { num_trees: 40, ..Default::default() }, &x, &y);
        let preds = model.predict(&x);
        let acc = preds.iter().zip(&y).filter(|(&p, &t)| (p > 0.5) == (t > 0.5)).count() as f32
            / y.len() as f32;
        assert!(acc > 0.95, "XOR accuracy {acc}");
    }

    #[test]
    fn training_loss_is_monotone_nonincreasing() {
        let (x, y) = xor_data(400);
        let model = Gbdt::fit(
            GbdtConfig { num_trees: 30, subsample: 1.0, colsample: 1.0, ..Default::default() },
            &x,
            &y,
        );
        let curve = model.train_curve();
        assert_eq!(curve.len(), 30);
        for w in curve.windows(2) {
            assert!(w[1] <= w[0] + 1e-9, "loss increased: {} -> {}", w[0], w[1]);
        }
        assert!(curve[curve.len() - 1] < curve[0] * 0.6, "loss should drop substantially");
    }

    #[test]
    fn regression_fits_smooth_function() {
        let mut rng = Rng64::seed_from_u64(5);
        let n = 800;
        let x = Matrix::from_fn(n, 2, |_, _| rng.uniform_in(-2.0, 2.0));
        let y: Vec<f32> = (0..n).map(|i| x.get(i, 0) * x.get(i, 0) + 0.5 * x.get(i, 1)).collect();
        let cfg = GbdtConfig {
            objective: Objective::SquaredError,
            num_trees: 80,
            max_depth: 4,
            ..Default::default()
        };
        let model = Gbdt::fit(cfg, &x, &y);
        let preds = model.predict(&x);
        let mse: f32 =
            preds.iter().zip(&y).map(|(&p, &t)| (p - t) * (p - t)).sum::<f32>() / n as f32;
        let var: f32 = {
            let mean = y.iter().sum::<f32>() / n as f32;
            y.iter().map(|&v| (v - mean) * (v - mean)).sum::<f32>() / n as f32
        };
        assert!(mse < 0.1 * var, "R² too low: mse={mse} var={var}");
    }

    #[test]
    fn prediction_is_deterministic() {
        let (x, y) = xor_data(200);
        let cfg = GbdtConfig { num_trees: 10, ..Default::default() };
        let a = Gbdt::fit(cfg.clone(), &x, &y).predict(&x);
        let b = Gbdt::fit(cfg, &x, &y).predict(&x);
        assert_eq!(a, b);
    }

    #[test]
    fn probabilities_are_valid() {
        let (x, y) = xor_data(200);
        let model = Gbdt::fit(GbdtConfig { num_trees: 15, ..Default::default() }, &x, &y);
        for p in model.predict(&x) {
            assert!((0.0..=1.0).contains(&p));
        }
    }

    #[test]
    fn importance_identifies_signal_features() {
        let (x, y) = xor_data(600);
        let model = Gbdt::fit(GbdtConfig { num_trees: 30, ..Default::default() }, &x, &y);
        let imp = model.feature_importance(3);
        // Features 0 and 1 carry the XOR; feature 2 is junk.
        assert!(imp[0] > imp[2] && imp[1] > imp[2], "importance {imp:?}");
    }

    #[test]
    fn constant_labels_yield_constant_prediction() {
        let x = Matrix::from_fn(50, 2, |i, j| (i * 2 + j) as f32);
        let y = vec![1.0f32; 50];
        let model = Gbdt::fit(GbdtConfig { num_trees: 5, ..Default::default() }, &x, &y);
        for p in model.predict(&x) {
            assert!(p > 0.98, "should saturate near 1: {p}");
        }
    }

    #[test]
    fn early_stopping_truncates_overfit_ensembles() {
        // Tiny training set with label noise + many deep trees =
        // guaranteed overfit; a validation set must cut the ensemble
        // short. The noise is deterministic (every 4th label flipped) so
        // overfitting does not depend on any particular RNG stream.
        let (x, mut y) = xor_data(60);
        for t in y.iter_mut().step_by(4) {
            *t = 1.0 - *t;
        }
        let (xv, yv) = {
            let (x, y) = xor_data(400);
            // Use the tail as a disjoint validation slice.
            let rows: Vec<u32> = (200..400).collect();
            (x.select_rows(&rows).unwrap(), y[200..400].to_vec())
        };
        let cfg = GbdtConfig {
            num_trees: 120,
            max_depth: 6,
            min_child_weight: 0.0,
            subsample: 1.0,
            colsample: 1.0,
            ..Default::default()
        };
        let full = Gbdt::fit(cfg.clone(), &x, &y);
        let stopped = Gbdt::fit_with_validation(cfg, &x, &y, &xv, &yv, 5);
        assert!(
            stopped.num_trees() < full.num_trees(),
            "early stopping should truncate: {} vs {}",
            stopped.num_trees(),
            full.num_trees()
        );
        // The truncated model is at least as good on validation.
        let loss = |m: &Gbdt| {
            m.predict(&xv)
                .iter()
                .zip(&yv)
                .map(|(&p, &t)| {
                    let p = (p as f64).clamp(1e-7, 1.0 - 1e-7);
                    if t > 0.5 {
                        -p.ln()
                    } else {
                        -(1.0 - p).ln()
                    }
                })
                .sum::<f64>()
        };
        assert!(loss(&stopped) <= loss(&full) + 1e-9);
    }

    #[test]
    #[should_panic(expected = "empty validation set")]
    fn early_stopping_rejects_empty_validation() {
        let (x, y) = xor_data(20);
        let _ =
            Gbdt::fit_with_validation(GbdtConfig::default(), &x, &y, &Matrix::zeros(0, 3), &[], 3);
    }

    #[test]
    #[should_panic(expected = "mismatch")]
    fn rejects_label_mismatch() {
        let x = Matrix::zeros(3, 1);
        let _ = Gbdt::fit(GbdtConfig::default(), &x, &[1.0, 0.0]);
    }
}
