//! Second-order factorization machine (Rendle 2010).

use atnn_tensor::{Matrix, Rng64};

fn sigmoid(x: f32) -> f32 {
    if x >= 0.0 {
        1.0 / (1.0 + (-x).exp())
    } else {
        let e = x.exp();
        e / (1.0 + e)
    }
}

/// FM hyper-parameters.
#[derive(Debug, Clone)]
pub struct FmConfig {
    /// Latent factor dimensionality.
    pub factors: usize,
    /// Training epochs.
    pub epochs: usize,
    /// SGD learning rate.
    pub learning_rate: f32,
    /// L2 regularization on all parameters.
    pub l2: f32,
    /// Per-coordinate gradient clip. The second-order term gives SGD a
    /// positive feedback loop (larger `v` → larger `Σ v x` → larger
    /// gradient on `v`) that can run away to NaN on dense many-column
    /// inputs; clipping bounds each step without affecting well-behaved
    /// runs, whose gradients sit orders of magnitude below the bound.
    pub grad_clip: f32,
    /// Init/shuffle seed.
    pub seed: u64,
}

impl Default for FmConfig {
    fn default() -> Self {
        FmConfig {
            factors: 8,
            epochs: 20,
            learning_rate: 0.05,
            l2: 1e-4,
            grad_clip: 10.0,
            seed: 37,
        }
    }
}

/// A binary-classification factorization machine:
/// `ŷ = σ(w₀ + Σᵢ wᵢxᵢ + ½ Σ_f [(Σᵢ v_{if} xᵢ)² − Σᵢ v_{if}² xᵢ²])`,
/// using Rendle's O(d·k) reformulation of the pairwise term.
#[derive(Debug, Clone)]
pub struct FactorizationMachine {
    w0: f32,
    w: Vec<f32>,
    /// `[d, k]` factor matrix.
    v: Matrix,
    factors: usize,
}

impl FactorizationMachine {
    /// Fits on dense features and 0/1 targets with plain SGD.
    pub fn fit(cfg: FmConfig, x: &Matrix, y: &[f32]) -> Self {
        assert!(x.rows() > 0, "FactorizationMachine::fit on empty data");
        assert_eq!(x.rows(), y.len(), "feature/label mismatch");
        assert!(cfg.factors > 0, "need at least one factor");
        assert!(cfg.grad_clip > 0.0, "grad_clip must be positive");
        let d = x.cols();
        let mut rng = Rng64::seed_from_u64(cfg.seed);
        let mut model = FactorizationMachine {
            w0: 0.0,
            w: vec![0.0; d],
            v: Matrix::from_fn(d, cfg.factors, |_, _| rng.normal_with(0.0, 0.05)),
            factors: cfg.factors,
        };
        let mut order: Vec<u32> = (0..x.rows() as u32).collect();
        let mut sum_f = vec![0.0f32; cfg.factors];
        for _ in 0..cfg.epochs {
            rng.shuffle(&mut order);
            for &i in &order {
                let row = x.row(i as usize);
                let z = model.raw_score(row, &mut sum_f);
                let err = sigmoid(z) - y[i as usize];
                let lr = cfg.learning_rate;
                let clip = cfg.grad_clip;
                model.w0 -= lr * err;
                for (j, &xv) in row.iter().enumerate() {
                    if xv == 0.0 {
                        continue;
                    }
                    let gw = (err * xv + cfg.l2 * model.w[j]).clamp(-clip, clip);
                    model.w[j] -= lr * gw;
                    for (f, &sf) in sum_f.iter().enumerate() {
                        let vjf = model.v.get(j, f);
                        let grad = (err * xv * (sf - vjf * xv) + cfg.l2 * vjf).clamp(-clip, clip);
                        model.v.set(j, f, vjf - lr * grad);
                    }
                }
            }
        }
        model
    }

    /// Fits on categorical fields (treated as one-hot groups) plus dense
    /// numeric columns, without materializing the one-hot expansion.
    ///
    /// `categorical[f][i]` is row `i`'s id in field `f` (vocab size
    /// `vocabs[f]`); the virtual feature layout is the fields' one-hot
    /// blocks in order, followed by the numeric columns. Training visits
    /// only each row's active coordinates — `fields + nonzero numerics`
    /// per sample instead of `Σ vocab` — and is bit-identical to
    /// [`FactorizationMachine::fit`] on the expanded dense input (same rng
    /// stream, same ascending-index update order, and the dense path's
    /// zero-skip makes the touched coordinates coincide).
    ///
    /// # Panics
    /// Panics on empty data, length mismatches, or an id `>= vocabs[f]`.
    pub fn fit_onehot(
        cfg: FmConfig,
        categorical: &[Vec<u32>],
        vocabs: &[usize],
        numeric: &Matrix,
        y: &[f32],
    ) -> Self {
        assert_eq!(categorical.len(), vocabs.len(), "field/vocab count mismatch");
        let n = if categorical.is_empty() { numeric.rows() } else { categorical[0].len() };
        assert!(n > 0, "FactorizationMachine::fit_onehot on empty data");
        assert_eq!(n, y.len(), "feature/label mismatch");
        assert_eq!(numeric.rows(), n, "numeric block row mismatch");
        for (f, col) in categorical.iter().enumerate() {
            assert_eq!(col.len(), n, "field {f} row mismatch");
        }
        assert!(cfg.factors > 0, "need at least one factor");
        assert!(cfg.grad_clip > 0.0, "grad_clip must be positive");

        let mut offsets = Vec::with_capacity(vocabs.len());
        let mut cat_width = 0usize;
        for &v in vocabs {
            offsets.push(cat_width);
            cat_width += v;
        }
        let d = cat_width + numeric.cols();
        // Same d => the same rng draw sequence as `fit` on the expansion.
        let mut rng = Rng64::seed_from_u64(cfg.seed);
        let mut model = FactorizationMachine {
            w0: 0.0,
            w: vec![0.0; d],
            v: Matrix::from_fn(d, cfg.factors, |_, _| rng.normal_with(0.0, 0.05)),
            factors: cfg.factors,
        };
        let mut order: Vec<u32> = (0..n as u32).collect();
        let mut sum_f = vec![0.0f32; cfg.factors];
        let mut active: Vec<(u32, f32)> = Vec::with_capacity(vocabs.len() + numeric.cols());
        for _ in 0..cfg.epochs {
            rng.shuffle(&mut order);
            for &i in &order {
                let i = i as usize;
                gather_active(categorical, vocabs, &offsets, numeric, i, &mut active);
                let z = model.raw_score_sparse(&active, &mut sum_f);
                let err = sigmoid(z) - y[i];
                let lr = cfg.learning_rate;
                let clip = cfg.grad_clip;
                model.w0 -= lr * err;
                for &(j, xv) in &active {
                    let j = j as usize;
                    let gw = (err * xv + cfg.l2 * model.w[j]).clamp(-clip, clip);
                    model.w[j] -= lr * gw;
                    for (f, &sf) in sum_f.iter().enumerate() {
                        let vjf = model.v.get(j, f);
                        let grad = (err * xv * (sf - vjf * xv) + cfg.l2 * vjf).clamp(-clip, clip);
                        model.v.set(j, f, vjf - lr * grad);
                    }
                }
            }
        }
        model
    }

    /// Raw (pre-sigmoid) score; `sum_f` is scratch of length `factors`
    /// left holding `Σᵢ v_{if} xᵢ` (needed by the SGD update).
    fn raw_score(&self, row: &[f32], sum_f: &mut [f32]) -> f32 {
        let mut z = self.w0;
        for (j, &xv) in row.iter().enumerate() {
            z += self.w[j] * xv;
        }
        let mut pair = 0.0f32;
        for (f, s) in sum_f.iter_mut().enumerate() {
            let mut sum = 0.0f32;
            let mut sum_sq = 0.0f32;
            for (j, &xv) in row.iter().enumerate() {
                let t = self.v.get(j, f) * xv;
                sum += t;
                sum_sq += t * t;
            }
            *s = sum;
            pair += sum * sum - sum_sq;
        }
        z + 0.5 * pair
    }

    /// Sparse [`FactorizationMachine::raw_score`]: visits only the active
    /// `(index, value)` pairs. Matches the dense score bit-for-bit when
    /// `active` lists the nonzero coordinates in ascending index order
    /// (the dense loops' visit order; zero coordinates contribute exact
    /// ±0.0 terms that leave the accumulators bit-unchanged).
    fn raw_score_sparse(&self, active: &[(u32, f32)], sum_f: &mut [f32]) -> f32 {
        let mut z = self.w0;
        for &(j, xv) in active {
            z += self.w[j as usize] * xv;
        }
        let mut pair = 0.0f32;
        for (f, s) in sum_f.iter_mut().enumerate() {
            let mut sum = 0.0f32;
            let mut sum_sq = 0.0f32;
            for &(j, xv) in active {
                let t = self.v.get(j as usize, f) * xv;
                sum += t;
                sum_sq += t * t;
            }
            *s = sum;
            pair += sum * sum - sum_sq;
        }
        z + 0.5 * pair
    }

    /// Predicted click probabilities.
    pub fn predict(&self, x: &Matrix) -> Vec<f32> {
        let mut sum_f = vec![0.0f32; self.factors];
        (0..x.rows()).map(|i| sigmoid(self.raw_score(x.row(i), &mut sum_f))).collect()
    }

    /// Predicted click probabilities for one-hot layout inputs (the
    /// counterpart of [`FactorizationMachine::fit_onehot`]).
    pub fn predict_onehot(
        &self,
        categorical: &[Vec<u32>],
        vocabs: &[usize],
        numeric: &Matrix,
    ) -> Vec<f32> {
        let mut offsets = Vec::with_capacity(vocabs.len());
        let mut cat_width = 0usize;
        for &v in vocabs {
            offsets.push(cat_width);
            cat_width += v;
        }
        assert_eq!(cat_width + numeric.cols(), self.w.len(), "feature layout mismatch");
        let n = if categorical.is_empty() { numeric.rows() } else { categorical[0].len() };
        let mut sum_f = vec![0.0f32; self.factors];
        let mut active: Vec<(u32, f32)> = Vec::with_capacity(vocabs.len() + numeric.cols());
        (0..n)
            .map(|i| {
                gather_active(categorical, vocabs, &offsets, numeric, i, &mut active);
                sigmoid(self.raw_score_sparse(&active, &mut sum_f))
            })
            .collect()
    }
}

/// Collects row `i`'s active `(index, value)` pairs — one-hot hits first
/// (field order, which is ascending offsets), then nonzero numerics —
/// into the reused `active` scratch.
fn gather_active(
    categorical: &[Vec<u32>],
    vocabs: &[usize],
    offsets: &[usize],
    numeric: &Matrix,
    i: usize,
    active: &mut Vec<(u32, f32)>,
) {
    active.clear();
    for (f, col) in categorical.iter().enumerate() {
        let id = col[i] as usize;
        assert!(id < vocabs[f], "field {f} id {id} out of vocab {}", vocabs[f]);
        active.push(((offsets[f] + id) as u32, 1.0));
    }
    let base = offsets.last().map_or(0, |o| o + vocabs[vocabs.len() - 1]);
    for (c, &xv) in numeric.row(i).iter().enumerate() {
        if xv != 0.0 {
            active.push(((base + c) as u32, xv));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// XOR of two binary features — pure interaction, invisible to a
    /// linear model.
    fn xor_data(n: usize, seed: u64) -> (Matrix, Vec<f32>) {
        let mut rng = Rng64::seed_from_u64(seed);
        let mut x = Matrix::zeros(n, 2);
        let mut y = Vec::with_capacity(n);
        for i in 0..n {
            let a = rng.bernoulli(0.5);
            let b = rng.bernoulli(0.5);
            x.set(i, 0, if a { 1.0 } else { -1.0 });
            x.set(i, 1, if b { 1.0 } else { -1.0 });
            y.push(if a != b { 1.0 } else { 0.0 });
        }
        (x, y)
    }

    fn accuracy(pred: &[f32], y: &[f32]) -> f32 {
        pred.iter().zip(y).filter(|(&p, &t)| (p > 0.5) == (t > 0.5)).count() as f32 / y.len() as f32
    }

    #[test]
    fn fm_learns_pure_interaction() {
        let (x, y) = xor_data(400, 1);
        let fm = FactorizationMachine::fit(
            FmConfig { factors: 4, epochs: 60, learning_rate: 0.1, ..Default::default() },
            &x,
            &y,
        );
        let acc = accuracy(&fm.predict(&x), &y);
        assert!(acc > 0.95, "FM must crack XOR: {acc}");
    }

    #[test]
    fn lr_cannot_learn_the_same_interaction() {
        // Contrast test justifying FM's existence in the baseline zoo.
        // The best linear classifier on corner-XOR isolates one corner and
        // tops out at 75% accuracy (+ sampling noise); FM reaches >95%.
        let (x, y) = xor_data(400, 1);
        let lr = crate::LogisticRegression::fit(crate::LrConfig::default(), &x, &y);
        let acc = accuracy(&lr.predict(&x), &y);
        assert!(acc < 0.85, "LR is capped by linearity on XOR: {acc}");
    }

    #[test]
    fn fm_also_handles_linear_signal() {
        let mut rng = Rng64::seed_from_u64(9);
        let n = 400;
        let x = Matrix::from_fn(n, 3, |_, _| rng.normal());
        let y: Vec<f32> =
            (0..n).map(|i| if x.get(i, 0) - x.get(i, 2) > 0.0 { 1.0 } else { 0.0 }).collect();
        let fm = FactorizationMachine::fit(FmConfig::default(), &x, &y);
        assert!(accuracy(&fm.predict(&x), &y) > 0.9);
    }

    #[test]
    fn determinism_and_valid_probabilities() {
        let (x, y) = xor_data(100, 2);
        let a = FactorizationMachine::fit(FmConfig::default(), &x, &y).predict(&x);
        let b = FactorizationMachine::fit(FmConfig::default(), &x, &y).predict(&x);
        assert_eq!(a, b);
        assert!(a.iter().all(|&p| (0.0..=1.0).contains(&p)));
    }

    #[test]
    #[should_panic(expected = "at least one factor")]
    fn rejects_zero_factors() {
        let (x, y) = xor_data(10, 3);
        let _ = FactorizationMachine::fit(FmConfig { factors: 0, ..Default::default() }, &x, &y);
    }

    /// Categorical fields + labels with a per-(a,b) interaction pattern,
    /// plus one numeric column carrying weak linear signal.
    fn onehot_data(n: usize, seed: u64) -> (Vec<Vec<u32>>, Vec<usize>, Matrix, Vec<f32>) {
        let mut rng = Rng64::seed_from_u64(seed);
        let vocabs = vec![3usize, 4];
        let mut cat = vec![Vec::with_capacity(n), Vec::with_capacity(n)];
        let mut numeric = Matrix::zeros(n, 2);
        let mut y = Vec::with_capacity(n);
        for i in 0..n {
            let a = (rng.next_u64() % 3) as u32;
            let b = (rng.next_u64() % 4) as u32;
            cat[0].push(a);
            cat[1].push(b);
            numeric.set(i, 0, rng.normal());
            // Second numeric column stays exactly zero for half the rows,
            // exercising the dense path's zero-skip agreement.
            if rng.bernoulli(0.5) {
                numeric.set(i, 1, rng.normal());
            }
            y.push(if (a + b).is_multiple_of(2) { 1.0 } else { 0.0 });
        }
        (cat, vocabs, numeric, y)
    }

    /// Expands the one-hot layout into the dense matrix `fit` consumes.
    fn expand(cat: &[Vec<u32>], vocabs: &[usize], numeric: &Matrix) -> Matrix {
        let n = cat[0].len();
        let cat_width: usize = vocabs.iter().sum();
        let mut x = Matrix::zeros(n, cat_width + numeric.cols());
        for i in 0..n {
            let mut offset = 0;
            for (f, col) in cat.iter().enumerate() {
                x.set(i, offset + col[i] as usize, 1.0);
                offset += vocabs[f];
            }
            for c in 0..numeric.cols() {
                x.set(i, cat_width + c, numeric.get(i, c));
            }
        }
        x
    }

    #[test]
    fn fit_onehot_is_bit_identical_to_dense_fit_on_expansion() {
        let (cat, vocabs, numeric, y) = onehot_data(120, 5);
        let cfg = FmConfig { factors: 4, epochs: 8, ..Default::default() };
        let sparse = FactorizationMachine::fit_onehot(cfg.clone(), &cat, &vocabs, &numeric, &y);
        let dense = FactorizationMachine::fit(cfg, &expand(&cat, &vocabs, &numeric), &y);
        assert_eq!(sparse.w0.to_bits(), dense.w0.to_bits());
        let bits = |w: &[f32]| w.iter().map(|v| v.to_bits()).collect::<Vec<_>>();
        assert_eq!(bits(&sparse.w), bits(&dense.w));
        assert_eq!(bits(sparse.v.as_slice()), bits(dense.v.as_slice()));
        assert_eq!(
            sparse.predict_onehot(&cat, &vocabs, &numeric),
            dense.predict(&expand(&cat, &vocabs, &numeric))
        );
    }

    #[test]
    fn fit_onehot_learns_categorical_interaction() {
        // Parity of two categorical ids is a pure interaction: no single
        // one-hot coordinate is predictive on its own.
        let (cat, vocabs, numeric, y) = onehot_data(500, 11);
        let fm = FactorizationMachine::fit_onehot(
            FmConfig { factors: 6, epochs: 80, learning_rate: 0.1, ..Default::default() },
            &cat,
            &vocabs,
            &numeric,
            &y,
        );
        let acc = accuracy(&fm.predict_onehot(&cat, &vocabs, &numeric), &y);
        assert!(acc > 0.9, "one-hot FM must learn id parity: {acc}");
    }

    #[test]
    #[should_panic(expected = "out of vocab")]
    fn fit_onehot_rejects_out_of_vocab_ids() {
        let cat = vec![vec![5u32]];
        let _ = FactorizationMachine::fit_onehot(
            FmConfig::default(),
            &cat,
            &[3],
            &Matrix::zeros(1, 0),
            &[1.0],
        );
    }
}
