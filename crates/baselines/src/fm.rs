//! Second-order factorization machine (Rendle 2010).

use atnn_tensor::{Matrix, Rng64};

fn sigmoid(x: f32) -> f32 {
    if x >= 0.0 {
        1.0 / (1.0 + (-x).exp())
    } else {
        let e = x.exp();
        e / (1.0 + e)
    }
}

/// FM hyper-parameters.
#[derive(Debug, Clone)]
pub struct FmConfig {
    /// Latent factor dimensionality.
    pub factors: usize,
    /// Training epochs.
    pub epochs: usize,
    /// SGD learning rate.
    pub learning_rate: f32,
    /// L2 regularization on all parameters.
    pub l2: f32,
    /// Per-coordinate gradient clip. The second-order term gives SGD a
    /// positive feedback loop (larger `v` → larger `Σ v x` → larger
    /// gradient on `v`) that can run away to NaN on dense many-column
    /// inputs; clipping bounds each step without affecting well-behaved
    /// runs, whose gradients sit orders of magnitude below the bound.
    pub grad_clip: f32,
    /// Init/shuffle seed.
    pub seed: u64,
}

impl Default for FmConfig {
    fn default() -> Self {
        FmConfig {
            factors: 8,
            epochs: 20,
            learning_rate: 0.05,
            l2: 1e-4,
            grad_clip: 10.0,
            seed: 37,
        }
    }
}

/// A binary-classification factorization machine:
/// `ŷ = σ(w₀ + Σᵢ wᵢxᵢ + ½ Σ_f [(Σᵢ v_{if} xᵢ)² − Σᵢ v_{if}² xᵢ²])`,
/// using Rendle's O(d·k) reformulation of the pairwise term.
#[derive(Debug, Clone)]
pub struct FactorizationMachine {
    w0: f32,
    w: Vec<f32>,
    /// `[d, k]` factor matrix.
    v: Matrix,
    factors: usize,
}

impl FactorizationMachine {
    /// Fits on dense features and 0/1 targets with plain SGD.
    pub fn fit(cfg: FmConfig, x: &Matrix, y: &[f32]) -> Self {
        assert!(x.rows() > 0, "FactorizationMachine::fit on empty data");
        assert_eq!(x.rows(), y.len(), "feature/label mismatch");
        assert!(cfg.factors > 0, "need at least one factor");
        assert!(cfg.grad_clip > 0.0, "grad_clip must be positive");
        let d = x.cols();
        let mut rng = Rng64::seed_from_u64(cfg.seed);
        let mut model = FactorizationMachine {
            w0: 0.0,
            w: vec![0.0; d],
            v: Matrix::from_fn(d, cfg.factors, |_, _| rng.normal_with(0.0, 0.05)),
            factors: cfg.factors,
        };
        let mut order: Vec<u32> = (0..x.rows() as u32).collect();
        let mut sum_f = vec![0.0f32; cfg.factors];
        for _ in 0..cfg.epochs {
            rng.shuffle(&mut order);
            for &i in &order {
                let row = x.row(i as usize);
                let z = model.raw_score(row, &mut sum_f);
                let err = sigmoid(z) - y[i as usize];
                let lr = cfg.learning_rate;
                let clip = cfg.grad_clip;
                model.w0 -= lr * err;
                for (j, &xv) in row.iter().enumerate() {
                    if xv == 0.0 {
                        continue;
                    }
                    let gw = (err * xv + cfg.l2 * model.w[j]).clamp(-clip, clip);
                    model.w[j] -= lr * gw;
                    for (f, &sf) in sum_f.iter().enumerate() {
                        let vjf = model.v.get(j, f);
                        let grad = (err * xv * (sf - vjf * xv) + cfg.l2 * vjf).clamp(-clip, clip);
                        model.v.set(j, f, vjf - lr * grad);
                    }
                }
            }
        }
        model
    }

    /// Raw (pre-sigmoid) score; `sum_f` is scratch of length `factors`
    /// left holding `Σᵢ v_{if} xᵢ` (needed by the SGD update).
    fn raw_score(&self, row: &[f32], sum_f: &mut [f32]) -> f32 {
        let mut z = self.w0;
        for (j, &xv) in row.iter().enumerate() {
            z += self.w[j] * xv;
        }
        let mut pair = 0.0f32;
        for (f, s) in sum_f.iter_mut().enumerate() {
            let mut sum = 0.0f32;
            let mut sum_sq = 0.0f32;
            for (j, &xv) in row.iter().enumerate() {
                let t = self.v.get(j, f) * xv;
                sum += t;
                sum_sq += t * t;
            }
            *s = sum;
            pair += sum * sum - sum_sq;
        }
        z + 0.5 * pair
    }

    /// Predicted click probabilities.
    pub fn predict(&self, x: &Matrix) -> Vec<f32> {
        let mut sum_f = vec![0.0f32; self.factors];
        (0..x.rows()).map(|i| sigmoid(self.raw_score(x.row(i), &mut sum_f))).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// XOR of two binary features — pure interaction, invisible to a
    /// linear model.
    fn xor_data(n: usize, seed: u64) -> (Matrix, Vec<f32>) {
        let mut rng = Rng64::seed_from_u64(seed);
        let mut x = Matrix::zeros(n, 2);
        let mut y = Vec::with_capacity(n);
        for i in 0..n {
            let a = rng.bernoulli(0.5);
            let b = rng.bernoulli(0.5);
            x.set(i, 0, if a { 1.0 } else { -1.0 });
            x.set(i, 1, if b { 1.0 } else { -1.0 });
            y.push(if a != b { 1.0 } else { 0.0 });
        }
        (x, y)
    }

    fn accuracy(pred: &[f32], y: &[f32]) -> f32 {
        pred.iter().zip(y).filter(|(&p, &t)| (p > 0.5) == (t > 0.5)).count() as f32 / y.len() as f32
    }

    #[test]
    fn fm_learns_pure_interaction() {
        let (x, y) = xor_data(400, 1);
        let fm = FactorizationMachine::fit(
            FmConfig { factors: 4, epochs: 60, learning_rate: 0.1, ..Default::default() },
            &x,
            &y,
        );
        let acc = accuracy(&fm.predict(&x), &y);
        assert!(acc > 0.95, "FM must crack XOR: {acc}");
    }

    #[test]
    fn lr_cannot_learn_the_same_interaction() {
        // Contrast test justifying FM's existence in the baseline zoo.
        // The best linear classifier on corner-XOR isolates one corner and
        // tops out at 75% accuracy (+ sampling noise); FM reaches >95%.
        let (x, y) = xor_data(400, 1);
        let lr = crate::LogisticRegression::fit(crate::LrConfig::default(), &x, &y);
        let acc = accuracy(&lr.predict(&x), &y);
        assert!(acc < 0.85, "LR is capped by linearity on XOR: {acc}");
    }

    #[test]
    fn fm_also_handles_linear_signal() {
        let mut rng = Rng64::seed_from_u64(9);
        let n = 400;
        let x = Matrix::from_fn(n, 3, |_, _| rng.normal());
        let y: Vec<f32> =
            (0..n).map(|i| if x.get(i, 0) - x.get(i, 2) > 0.0 { 1.0 } else { 0.0 }).collect();
        let fm = FactorizationMachine::fit(FmConfig::default(), &x, &y);
        assert!(accuracy(&fm.predict(&x), &y) > 0.9);
    }

    #[test]
    fn determinism_and_valid_probabilities() {
        let (x, y) = xor_data(100, 2);
        let a = FactorizationMachine::fit(FmConfig::default(), &x, &y).predict(&x);
        let b = FactorizationMachine::fit(FmConfig::default(), &x, &y).predict(&x);
        assert_eq!(a, b);
        assert!(a.iter().all(|&p| (0.0..=1.0).contains(&p)));
    }

    #[test]
    #[should_panic(expected = "at least one factor")]
    fn rejects_zero_factors() {
        let (x, y) = xor_data(10, 3);
        let _ = FactorizationMachine::fit(FmConfig { factors: 0, ..Default::default() }, &x, &y);
    }
}
