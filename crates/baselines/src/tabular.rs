//! Dense tabular encoding for the non-neural baselines.

use atnn_tensor::Matrix;

/// Flattens a categorical-columns + numeric-matrix pair into one dense
/// matrix: categorical ids become leading ordinal `f32` columns, numerics
/// follow unchanged.
///
/// Trees split ordinal encodings natively; linear models see them as
/// coarse ordinal signals (their usual handicap on categorical data, which
/// the paper's Table I also reflects).
pub fn flatten(categorical: &[Vec<u32>], numeric: &Matrix) -> Matrix {
    let n = numeric.rows();
    for col in categorical {
        assert_eq!(col.len(), n, "flatten: categorical column length mismatch");
    }
    let d = categorical.len() + numeric.cols();
    Matrix::from_fn(n, d, |i, j| {
        if j < categorical.len() {
            categorical[j][i] as f32
        } else {
            numeric.get(i, j - categorical.len())
        }
    })
}

/// Horizontally concatenates two dense matrices (e.g. profile ++ stats).
pub fn hstack(a: &Matrix, b: &Matrix) -> Matrix {
    a.concat_cols(b).expect("hstack: row count mismatch")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flatten_orders_cats_then_numerics() {
        let cats = vec![vec![1u32, 2], vec![7, 8]];
        let nums = Matrix::from_rows(&[&[0.5, 0.6], &[0.7, 0.8]]).unwrap();
        let m = flatten(&cats, &nums);
        assert_eq!(m.shape(), (2, 4));
        assert_eq!(m.row(0), &[1.0, 7.0, 0.5, 0.6]);
        assert_eq!(m.row(1), &[2.0, 8.0, 0.7, 0.8]);
    }

    #[test]
    fn flatten_with_no_categoricals() {
        let nums = Matrix::from_rows(&[&[1.0]]).unwrap();
        assert_eq!(flatten(&[], &nums), nums);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn flatten_validates_lengths() {
        let nums = Matrix::zeros(2, 1);
        let _ = flatten(&[vec![1u32]], &nums);
    }

    #[test]
    fn hstack_concats() {
        let a = Matrix::from_rows(&[&[1.0]]).unwrap();
        let b = Matrix::from_rows(&[&[2.0, 3.0]]).unwrap();
        assert_eq!(hstack(&a, &b).row(0), &[1.0, 2.0, 3.0]);
    }
}
