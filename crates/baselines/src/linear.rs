//! Linear CTR baselines: mini-batch logistic regression and FTRL-Proximal.

use atnn_tensor::{Matrix, Rng64};

fn sigmoid(x: f32) -> f32 {
    if x >= 0.0 {
        1.0 / (1.0 + (-x).exp())
    } else {
        let e = x.exp();
        e / (1.0 + e)
    }
}

/// Logistic-regression hyper-parameters.
#[derive(Debug, Clone)]
pub struct LrConfig {
    /// Training epochs.
    pub epochs: usize,
    /// Learning rate.
    pub learning_rate: f32,
    /// L2 regularization.
    pub l2: f32,
    /// Mini-batch size.
    pub batch_size: usize,
    /// Shuffle seed.
    pub seed: u64,
}

impl Default for LrConfig {
    fn default() -> Self {
        LrConfig { epochs: 12, learning_rate: 0.1, l2: 1e-4, batch_size: 64, seed: 29 }
    }
}

/// Dense binary logistic regression (paper reference \[11\]) trained with
/// mini-batch SGD.
#[derive(Debug, Clone)]
pub struct LogisticRegression {
    weights: Vec<f32>,
    bias: f32,
}

impl LogisticRegression {
    /// Fits on dense features `x` and 0/1 targets `y`.
    ///
    /// # Panics
    /// Panics on empty data or mismatched labels.
    pub fn fit(cfg: LrConfig, x: &Matrix, y: &[f32]) -> Self {
        assert!(x.rows() > 0, "LogisticRegression::fit on empty data");
        assert_eq!(x.rows(), y.len(), "feature/label mismatch");
        let mut rng = Rng64::seed_from_u64(cfg.seed);
        let d = x.cols();
        let mut weights = vec![0.0f32; d];
        let mut bias = 0.0f32;
        let mut order: Vec<u32> = (0..x.rows() as u32).collect();
        for _ in 0..cfg.epochs {
            rng.shuffle(&mut order);
            for chunk in order.chunks(cfg.batch_size) {
                let mut grad_w = vec![0.0f32; d];
                let mut grad_b = 0.0f32;
                for &i in chunk {
                    let row = x.row(i as usize);
                    let z = bias + dot(&weights, row);
                    let err = sigmoid(z) - y[i as usize];
                    for (gw, &xv) in grad_w.iter_mut().zip(row) {
                        *gw += err * xv;
                    }
                    grad_b += err;
                }
                let scale = cfg.learning_rate / chunk.len() as f32;
                for (w, g) in weights.iter_mut().zip(&grad_w) {
                    *w -= scale * (g + cfg.l2 * *w * chunk.len() as f32);
                }
                bias -= scale * grad_b;
            }
        }
        LogisticRegression { weights, bias }
    }

    /// Predicted click probabilities.
    pub fn predict(&self, x: &Matrix) -> Vec<f32> {
        (0..x.rows()).map(|i| sigmoid(self.bias + dot(&self.weights, x.row(i)))).collect()
    }

    /// The learned weight vector.
    pub fn weights(&self) -> &[f32] {
        &self.weights
    }

    /// The learned intercept.
    pub fn bias(&self) -> f32 {
        self.bias
    }
}

/// FTRL-Proximal hyper-parameters (α, β, λ₁, λ₂ as in McMahan et al. 2013).
#[derive(Debug, Clone)]
pub struct FtrlConfig {
    /// Per-coordinate learning-rate numerator α.
    pub alpha: f32,
    /// Learning-rate smoothing β.
    pub beta: f32,
    /// L1 regularization λ₁ (induces exact zeros).
    pub l1: f32,
    /// L2 regularization λ₂.
    pub l2: f32,
    /// Passes over the data.
    pub epochs: usize,
    /// Shuffle seed.
    pub seed: u64,
}

impl Default for FtrlConfig {
    fn default() -> Self {
        FtrlConfig { alpha: 0.1, beta: 1.0, l1: 1.0, l2: 1.0, epochs: 4, seed: 41 }
    }
}

/// FTRL-Proximal online logistic regression (paper reference \[12\]).
///
/// Maintains the `(z, n)` per-coordinate state of the original algorithm;
/// weights are materialized lazily from `z` at prediction time, producing
/// exact zeros for coordinates whose `|z| <= λ₁`.
#[derive(Debug, Clone)]
pub struct Ftrl {
    cfg: FtrlConfig,
    z: Vec<f32>,
    n: Vec<f32>,
}

impl Ftrl {
    /// Fits on dense features and 0/1 targets (one online pass per epoch).
    pub fn fit(cfg: FtrlConfig, x: &Matrix, y: &[f32]) -> Self {
        assert!(x.rows() > 0, "Ftrl::fit on empty data");
        assert_eq!(x.rows(), y.len(), "feature/label mismatch");
        let d = x.cols() + 1; // slot d-1 is the intercept
        let mut model = Ftrl { cfg: cfg.clone(), z: vec![0.0; d], n: vec![0.0; d] };
        let mut rng = Rng64::seed_from_u64(cfg.seed);
        let mut order: Vec<u32> = (0..x.rows() as u32).collect();
        for _ in 0..cfg.epochs {
            rng.shuffle(&mut order);
            for &i in &order {
                model.update(x.row(i as usize), y[i as usize]);
            }
        }
        model
    }

    fn weight(&self, j: usize) -> f32 {
        let z = self.z[j];
        if z.abs() <= self.cfg.l1 {
            return 0.0;
        }
        let sign = z.signum();
        -(z - sign * self.cfg.l1)
            / ((self.cfg.beta + self.n[j].sqrt()) / self.cfg.alpha + self.cfg.l2)
    }

    fn update(&mut self, row: &[f32], y: f32) {
        let d = row.len();
        let mut zhat = self.weight(d); // intercept (x = 1)
        for (j, &xv) in row.iter().enumerate() {
            if xv != 0.0 {
                zhat += self.weight(j) * xv;
            }
        }
        let p = sigmoid(zhat);
        let err = p - y;
        // Coordinate update for every active feature plus the intercept.
        for (j, &xv) in row.iter().enumerate().chain(std::iter::once((d, &1.0f32))) {
            if xv == 0.0 {
                continue;
            }
            let g = err * xv;
            let sigma = ((self.n[j] + g * g).sqrt() - self.n[j].sqrt()) / self.cfg.alpha;
            self.z[j] += g - sigma * self.weight(j);
            self.n[j] += g * g;
        }
    }

    /// Predicted click probabilities.
    pub fn predict(&self, x: &Matrix) -> Vec<f32> {
        let d = x.cols();
        (0..x.rows())
            .map(|i| {
                let mut z = self.weight(d);
                for (j, &xv) in x.row(i).iter().enumerate() {
                    if xv != 0.0 {
                        z += self.weight(j) * xv;
                    }
                }
                sigmoid(z)
            })
            .collect()
    }

    /// Materialized weights (including trailing intercept), showing the
    /// L1-induced sparsity.
    pub fn weights(&self) -> Vec<f32> {
        (0..self.z.len()).map(|j| self.weight(j)).collect()
    }
}

fn dot(a: &[f32], b: &[f32]) -> f32 {
    a.iter().zip(b).map(|(&x, &y)| x * y).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Linearly separable data: y = [x0 + 2 x1 > 0].
    fn linear_data(n: usize, seed: u64) -> (Matrix, Vec<f32>) {
        let mut rng = Rng64::seed_from_u64(seed);
        let x = Matrix::from_fn(n, 3, |_, _| rng.normal());
        let y =
            (0..n).map(|i| if x.get(i, 0) + 2.0 * x.get(i, 1) > 0.0 { 1.0 } else { 0.0 }).collect();
        (x, y)
    }

    fn accuracy(pred: &[f32], y: &[f32]) -> f32 {
        pred.iter().zip(y).filter(|(&p, &t)| (p > 0.5) == (t > 0.5)).count() as f32 / y.len() as f32
    }

    #[test]
    fn lr_separates_linear_data() {
        let (x, y) = linear_data(500, 1);
        let model = LogisticRegression::fit(LrConfig::default(), &x, &y);
        assert!(accuracy(&model.predict(&x), &y) > 0.95);
        // Weight on the junk feature stays comparatively small.
        let w = model.weights();
        assert!(w[1].abs() > w[2].abs(), "w={w:?}");
    }

    #[test]
    fn lr_learns_bias_of_imbalanced_data() {
        let x = Matrix::zeros(200, 1); // featureless
        let y: Vec<f32> = (0..200).map(|i| if i < 180 { 1.0 } else { 0.0 }).collect();
        let cfg = LrConfig { epochs: 150, learning_rate: 0.5, ..Default::default() };
        let model = LogisticRegression::fit(cfg, &x, &y);
        let p = model.predict(&x)[0];
        assert!((p - 0.9).abs() < 0.05, "base rate 0.9, got {p}");
        assert!(model.bias() > 0.0);
    }

    #[test]
    fn ftrl_separates_linear_data() {
        let (x, y) = linear_data(500, 2);
        let model = Ftrl::fit(FtrlConfig { l1: 0.05, ..Default::default() }, &x, &y);
        assert!(accuracy(&model.predict(&x), &y) > 0.93);
    }

    #[test]
    fn ftrl_l1_zeroes_junk_features() {
        // 2 informative + 8 pure-noise features; strong L1 must produce
        // exact zeros on (most of) the noise block.
        let mut rng = Rng64::seed_from_u64(3);
        let n = 800;
        let x = Matrix::from_fn(n, 10, |_, _| rng.normal());
        let y: Vec<f32> =
            (0..n).map(|i| if x.get(i, 0) + 2.0 * x.get(i, 1) > 0.0 { 1.0 } else { 0.0 }).collect();
        // Noise coordinates accumulate |z| ~ sqrt(n)·|g| ≈ 7 by random walk
        // while signal coordinates grow linearly (~80): λ₁ = 20 separates.
        let model = Ftrl::fit(FtrlConfig { l1: 20.0, epochs: 1, ..Default::default() }, &x, &y);
        let w = model.weights();
        assert!(w[0] != 0.0 && w[1] != 0.0, "signal must survive: {w:?}");
        let zeros = w[2..10].iter().filter(|&&v| v == 0.0).count();
        assert!(zeros >= 6, "L1 should zero noise features: {w:?}");
    }

    #[test]
    fn determinism() {
        let (x, y) = linear_data(100, 4);
        let a = LogisticRegression::fit(LrConfig::default(), &x, &y).predict(&x);
        let b = LogisticRegression::fit(LrConfig::default(), &x, &y).predict(&x);
        assert_eq!(a, b);
        let c = Ftrl::fit(FtrlConfig::default(), &x, &y).predict(&x);
        let d = Ftrl::fit(FtrlConfig::default(), &x, &y).predict(&x);
        assert_eq!(c, d);
    }
}
