//! Baseline learners the ATNN paper compares against (or cites).
//!
//! - [`Gbdt`] — a from-scratch histogram gradient-boosted decision tree
//!   (Friedman 2001, reference \[33\]): the paper's strongest non-neural
//!   baseline in Table I. Supports logistic and squared-error objectives,
//!   quantile binning, row/column subsampling and depth-wise growth with
//!   XGBoost-style gain.
//! - [`LogisticRegression`] — the classical CTR model (reference \[11\]),
//!   trained by mini-batch SGD.
//! - [`Ftrl`] — FTRL-Proximal (McMahan et al. 2013, reference \[12\]):
//!   per-coordinate adaptive logistic regression with L1-induced sparsity.
//! - [`FactorizationMachine`] — second-order FM (Rendle 2010, reference
//!   \[14\]) with the O(nk) pairwise-interaction trick.
//!
//! All models consume a dense *tabular* encoding ([`tabular::flatten`])
//! where categorical ids appear as ordinal columns — the standard way to
//! feed mixed features to trees without one-hot blow-up. The [`Learner`]
//! trait puts one generic `fit`/`predict` surface over the whole zoo
//! (plus [`FmOneHot`] for the sparse one-hot FM path), turning panicking
//! preconditions into typed [`FitError`]s for harness code.

mod fm;
pub mod gbdt;
mod learner;
mod linear;
pub mod tabular;

pub use fm::{FactorizationMachine, FmConfig};
pub use gbdt::{Gbdt, GbdtConfig, Objective};
pub use learner::{FitError, FmOneHot, Learner, OneHotBlock};
pub use linear::{Ftrl, FtrlConfig, LogisticRegression, LrConfig};
