//! One uniform train/predict surface over every baseline.
//!
//! The inherent `fit` constructors keep their original shapes (and their
//! documented panics — existing callers and `#[should_panic]` tests are
//! untouched); the [`Learner`] impls validate the same preconditions up
//! front and report them as typed [`FitError`]s instead, then delegate.
//! That gives harness code — benchmark tables, ablation sweeps — one
//! generic entry point:
//!
//! ```
//! use atnn_baselines::{Learner, LogisticRegression, LrConfig};
//! use atnn_tensor::Matrix;
//!
//! fn auc_of<L: Learner<Input = Matrix>>(cfg: L::Config, x: &Matrix, y: &[f32]) -> Vec<f32> {
//!     let model = L::fit(cfg, x, y).expect("valid data");
//!     model.predict(x)
//! }
//!
//! let x = Matrix::from_fn(8, 2, |i, j| (i * 2 + j) as f32 / 16.0);
//! let y = vec![0.0, 1.0, 0.0, 1.0, 0.0, 1.0, 0.0, 1.0];
//! let p = auc_of::<LogisticRegression>(LrConfig::default(), &x, &y);
//! assert_eq!(p.len(), 8);
//! ```

use atnn_tensor::Matrix;

use crate::fm::{FactorizationMachine, FmConfig};
use crate::gbdt::{Gbdt, GbdtConfig};
use crate::linear::{Ftrl, FtrlConfig, LogisticRegression, LrConfig};

/// Why a [`Learner::fit`] call was rejected before training started.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FitError {
    /// The feature block has zero rows.
    EmptyTrainingSet,
    /// Feature rows and label count disagree.
    LabelMismatch {
        /// Rows in the feature block.
        rows: usize,
        /// Entries in the label slice.
        labels: usize,
    },
    /// A hyper-parameter is out of its valid range.
    InvalidConfig(&'static str),
    /// A categorical id is outside its field's declared vocabulary.
    IdOutOfVocab {
        /// Field index within the one-hot block.
        field: usize,
        /// The offending id.
        id: u32,
        /// The field's vocabulary size.
        vocab: usize,
    },
}

impl std::fmt::Display for FitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FitError::EmptyTrainingSet => write!(f, "fit on an empty training set"),
            FitError::LabelMismatch { rows, labels } => {
                write!(f, "{rows} feature rows but {labels} labels")
            }
            FitError::InvalidConfig(why) => write!(f, "invalid config: {why}"),
            FitError::IdOutOfVocab { field, id, vocab } => {
                write!(f, "field {field}: id {id} out of vocab {vocab}")
            }
        }
    }
}

impl std::error::Error for FitError {}

/// A supervised baseline with a uniform fit/predict surface.
///
/// `Input` is the feature container the model consumes — [`Matrix`] for
/// the dense tabular models, [`OneHotBlock`] for the sparse one-hot FM —
/// so a generic harness can be written per input layout.
pub trait Learner: Sized {
    /// Hyper-parameters consumed by [`Learner::fit`].
    type Config;
    /// Feature container (`Matrix` for dense tabular models).
    type Input: ?Sized;

    /// Trains a model, rejecting degenerate inputs as [`FitError`]s
    /// (where the inherent constructors would panic).
    fn fit(cfg: Self::Config, x: &Self::Input, y: &[f32]) -> Result<Self, FitError>;

    /// Per-row predictions (probabilities for the CTR objectives).
    fn predict(&self, x: &Self::Input) -> Vec<f32>;
}

fn check_dense(x: &Matrix, y: &[f32]) -> Result<(), FitError> {
    if x.rows() == 0 {
        return Err(FitError::EmptyTrainingSet);
    }
    if x.rows() != y.len() {
        return Err(FitError::LabelMismatch { rows: x.rows(), labels: y.len() });
    }
    Ok(())
}

impl Learner for LogisticRegression {
    type Config = LrConfig;
    type Input = Matrix;

    fn fit(cfg: LrConfig, x: &Matrix, y: &[f32]) -> Result<Self, FitError> {
        check_dense(x, y)?;
        Ok(LogisticRegression::fit(cfg, x, y))
    }

    fn predict(&self, x: &Matrix) -> Vec<f32> {
        LogisticRegression::predict(self, x)
    }
}

impl Learner for Ftrl {
    type Config = FtrlConfig;
    type Input = Matrix;

    fn fit(cfg: FtrlConfig, x: &Matrix, y: &[f32]) -> Result<Self, FitError> {
        check_dense(x, y)?;
        Ok(Ftrl::fit(cfg, x, y))
    }

    fn predict(&self, x: &Matrix) -> Vec<f32> {
        Ftrl::predict(self, x)
    }
}

impl Learner for FactorizationMachine {
    type Config = FmConfig;
    type Input = Matrix;

    fn fit(cfg: FmConfig, x: &Matrix, y: &[f32]) -> Result<Self, FitError> {
        check_dense(x, y)?;
        if cfg.factors == 0 {
            return Err(FitError::InvalidConfig("need at least one factor"));
        }
        if cfg.grad_clip.is_nan() || cfg.grad_clip <= 0.0 {
            return Err(FitError::InvalidConfig("grad_clip must be positive"));
        }
        Ok(FactorizationMachine::fit(cfg, x, y))
    }

    fn predict(&self, x: &Matrix) -> Vec<f32> {
        FactorizationMachine::predict(self, x)
    }
}

impl Learner for Gbdt {
    type Config = GbdtConfig;
    type Input = Matrix;

    fn fit(cfg: GbdtConfig, x: &Matrix, y: &[f32]) -> Result<Self, FitError> {
        check_dense(x, y)?;
        Ok(Gbdt::fit(cfg, x, y))
    }

    fn predict(&self, x: &Matrix) -> Vec<f32> {
        Gbdt::predict(self, x)
    }
}

/// The one-hot feature layout [`FactorizationMachine::fit_onehot`]
/// consumes: categorical fields as raw ids plus a dense numeric block,
/// never materializing the one-hot expansion.
#[derive(Debug, Clone)]
pub struct OneHotBlock {
    /// `categorical[f][i]` = row `i`'s id in field `f`.
    pub categorical: Vec<Vec<u32>>,
    /// Vocabulary size per field.
    pub vocabs: Vec<usize>,
    /// Dense numeric columns appended after the one-hot blocks.
    pub numeric: Matrix,
}

impl OneHotBlock {
    /// Rows in the block.
    pub fn rows(&self) -> usize {
        if self.categorical.is_empty() {
            self.numeric.rows()
        } else {
            self.categorical[0].len()
        }
    }
}

/// [`FactorizationMachine`] driven through the sparse one-hot path, as a
/// learner over [`OneHotBlock`] inputs. Bit-identical to the dense FM on
/// the materialized expansion (see `fit_onehot`).
#[derive(Debug, Clone)]
pub struct FmOneHot(pub FactorizationMachine);

impl Learner for FmOneHot {
    type Config = FmConfig;
    type Input = OneHotBlock;

    fn fit(cfg: FmConfig, x: &OneHotBlock, y: &[f32]) -> Result<Self, FitError> {
        if x.categorical.len() != x.vocabs.len() {
            return Err(FitError::InvalidConfig("field/vocab count mismatch"));
        }
        let n = x.rows();
        if n == 0 {
            return Err(FitError::EmptyTrainingSet);
        }
        if n != y.len() {
            return Err(FitError::LabelMismatch { rows: n, labels: y.len() });
        }
        if x.numeric.rows() != n {
            return Err(FitError::LabelMismatch { rows: n, labels: x.numeric.rows() });
        }
        for (f, col) in x.categorical.iter().enumerate() {
            if col.len() != n {
                return Err(FitError::LabelMismatch { rows: n, labels: col.len() });
            }
            if let Some(&id) = col.iter().find(|&&id| id as usize >= x.vocabs[f]) {
                return Err(FitError::IdOutOfVocab { field: f, id, vocab: x.vocabs[f] });
            }
        }
        if cfg.factors == 0 {
            return Err(FitError::InvalidConfig("need at least one factor"));
        }
        if cfg.grad_clip.is_nan() || cfg.grad_clip <= 0.0 {
            return Err(FitError::InvalidConfig("grad_clip must be positive"));
        }
        Ok(FmOneHot(FactorizationMachine::fit_onehot(
            cfg,
            &x.categorical,
            &x.vocabs,
            &x.numeric,
            y,
        )))
    }

    fn predict(&self, x: &OneHotBlock) -> Vec<f32> {
        self.0.predict_onehot(&x.categorical, &x.vocabs, &x.numeric)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use atnn_tensor::Rng64;

    fn data(n: usize) -> (Matrix, Vec<f32>) {
        let mut rng = Rng64::seed_from_u64(7);
        let x = Matrix::from_fn(n, 3, |_, _| rng.normal());
        let y =
            (0..n).map(|i| if x.get(i, 0) + 2.0 * x.get(i, 1) > 0.0 { 1.0 } else { 0.0 }).collect();
        (x, y)
    }

    /// The generic harness every dense baseline must satisfy.
    fn fit_predict<L: Learner<Input = Matrix>>(cfg: L::Config, x: &Matrix, y: &[f32]) -> Vec<f32> {
        L::fit(cfg, x, y).expect("valid data").predict(x)
    }

    #[test]
    fn all_dense_learners_run_through_one_generic_harness() {
        let (x, y) = data(200);
        for preds in [
            fit_predict::<LogisticRegression>(LrConfig::default(), &x, &y),
            fit_predict::<Ftrl>(FtrlConfig::default(), &x, &y),
            fit_predict::<FactorizationMachine>(FmConfig::default(), &x, &y),
            fit_predict::<Gbdt>(GbdtConfig { num_trees: 10, ..Default::default() }, &x, &y),
        ] {
            assert_eq!(preds.len(), 200);
            assert!(preds.iter().all(|p| (0.0..=1.0).contains(p)));
        }
    }

    #[test]
    fn trait_fit_matches_inherent_fit_exactly() {
        let (x, y) = data(150);
        let a =
            <LogisticRegression as Learner>::fit(LrConfig::default(), &x, &y).unwrap().predict(&x);
        let b = LogisticRegression::fit(LrConfig::default(), &x, &y).predict(&x);
        assert_eq!(a, b);
        let a = <FactorizationMachine as Learner>::fit(FmConfig::default(), &x, &y)
            .unwrap()
            .predict(&x);
        let b = FactorizationMachine::fit(FmConfig::default(), &x, &y).predict(&x);
        assert_eq!(a, b);
    }

    #[test]
    fn degenerate_inputs_become_typed_errors_not_panics() {
        let empty = Matrix::zeros(0, 3);
        assert_eq!(
            <LogisticRegression as Learner>::fit(LrConfig::default(), &empty, &[]).unwrap_err(),
            FitError::EmptyTrainingSet
        );
        let (x, _) = data(10);
        assert_eq!(
            <Ftrl as Learner>::fit(FtrlConfig::default(), &x, &[1.0]).unwrap_err(),
            FitError::LabelMismatch { rows: 10, labels: 1 }
        );
        let y = vec![0.0; 10];
        assert!(matches!(
            <FactorizationMachine as Learner>::fit(
                FmConfig { factors: 0, ..Default::default() },
                &x,
                &y
            )
            .unwrap_err(),
            FitError::InvalidConfig(_)
        ));
        assert_eq!(
            <Gbdt as Learner>::fit(GbdtConfig::default(), &empty, &[]).unwrap_err(),
            FitError::EmptyTrainingSet
        );
    }

    #[test]
    fn onehot_learner_validates_and_matches_the_inherent_path() {
        let block = OneHotBlock {
            categorical: vec![vec![0, 1, 2, 0], vec![3, 0, 1, 2]],
            vocabs: vec![3, 4],
            numeric: Matrix::from_fn(4, 1, |i, _| i as f32 / 4.0),
        };
        let y = [1.0, 0.0, 1.0, 0.0];
        let cfg = FmConfig { factors: 2, epochs: 3, ..Default::default() };
        let model = FmOneHot::fit(cfg.clone(), &block, &y).unwrap();
        let inherent = FactorizationMachine::fit_onehot(
            cfg,
            &block.categorical,
            &block.vocabs,
            &block.numeric,
            &y,
        );
        assert_eq!(
            model.predict(&block),
            inherent.predict_onehot(&block.categorical, &block.vocabs, &block.numeric)
        );

        let bad = OneHotBlock { vocabs: vec![3, 2], ..block.clone() };
        assert_eq!(
            FmOneHot::fit(FmConfig::default(), &bad, &y).unwrap_err(),
            FitError::IdOutOfVocab { field: 1, id: 3, vocab: 2 }
        );
    }
}
