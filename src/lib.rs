//! Umbrella crate for the ATNN reproduction workspace.
//!
//! Re-exports the public API of every member crate so that examples and
//! integration tests (and downstream users who just want "the whole
//! system") can depend on a single crate.
//!
//! See `DESIGN.md` for the system inventory and `EXPERIMENTS.md` for the
//! paper-vs-measured record of every table and figure.

pub use atnn_autograd as autograd;
pub use atnn_baselines as baselines;
pub use atnn_core as atnn;
pub use atnn_data as data;
pub use atnn_metrics as metrics;
pub use atnn_nn as nn;
pub use atnn_obs as obs;
pub use atnn_serve as serve;
pub use atnn_tensor as tensor;

mod error;

pub use error::AtnnError;
