//! The workspace-wide error type.
//!
//! Every member crate defines its own focused error enum close to where
//! it can occur ([`TensorError`] for shape mismatches, [`NnError`] for
//! checkpoint decoding, [`IoError`] for dataset files, [`ArtifactError`]
//! for model artifacts, [`ProtocolError`] for the serve wire format, plus
//! the training-layer [`TrainError`]/[`ConfigError`]/[`FitError`]).
//! [`AtnnError`] is the sum of them all: application code that drives the
//! whole system — load a dataset, build a config, train, checkpoint,
//! serve — can use one `Result<_, AtnnError>` and let `?` convert.

use std::fmt;

use atnn_baselines::FitError;
use atnn_core::{ArtifactError, ConfigError, TrainError};
use atnn_data::io::IoError;
use atnn_nn::NnError;
use atnn_serve::ProtocolError;
use atnn_tensor::TensorError;

/// Any error the ATNN workspace can produce, with `From` conversions
/// from every member crate's error type (so `?` just works).
#[derive(Debug)]
#[non_exhaustive]
pub enum AtnnError {
    /// Tensor shape/layout violation ([`atnn_tensor`]).
    Tensor(TensorError),
    /// Checkpoint encode/decode failure ([`atnn_nn`]).
    Nn(NnError),
    /// Dataset file IO/parse failure ([`atnn_data`]).
    Io(IoError),
    /// Model-artifact capture/restore failure ([`atnn_core`]).
    Artifact(ArtifactError),
    /// Serve wire-protocol violation ([`atnn_serve`]).
    Protocol(ProtocolError),
    /// Training-loop failure ([`atnn_core`]).
    Train(TrainError),
    /// Rejected training/model configuration ([`atnn_core`]).
    Config(ConfigError),
    /// Rejected baseline fit ([`atnn_baselines`]).
    Fit(FitError),
}

impl fmt::Display for AtnnError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AtnnError::Tensor(e) => write!(f, "tensor: {e}"),
            AtnnError::Nn(e) => write!(f, "nn: {e}"),
            AtnnError::Io(e) => write!(f, "io: {e}"),
            AtnnError::Artifact(e) => write!(f, "artifact: {e}"),
            AtnnError::Protocol(e) => write!(f, "protocol: {e}"),
            AtnnError::Train(e) => write!(f, "train: {e}"),
            AtnnError::Config(e) => write!(f, "config: {e}"),
            AtnnError::Fit(e) => write!(f, "fit: {e}"),
        }
    }
}

impl std::error::Error for AtnnError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            AtnnError::Tensor(e) => Some(e),
            AtnnError::Nn(e) => Some(e),
            AtnnError::Io(e) => Some(e),
            AtnnError::Artifact(e) => Some(e),
            AtnnError::Protocol(e) => Some(e),
            AtnnError::Train(e) => Some(e),
            AtnnError::Config(e) => Some(e),
            AtnnError::Fit(e) => Some(e),
        }
    }
}

macro_rules! from_variant {
    ($($source:ty => $variant:ident),* $(,)?) => {
        $(impl From<$source> for AtnnError {
            fn from(e: $source) -> Self {
                AtnnError::$variant(e)
            }
        })*
    };
}

from_variant! {
    TensorError => Tensor,
    NnError => Nn,
    IoError => Io,
    ArtifactError => Artifact,
    ProtocolError => Protocol,
    TrainError => Train,
    ConfigError => Config,
    FitError => Fit,
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::error::Error as _;

    /// `?` must lift every member error into [`AtnnError`].
    #[test]
    fn question_mark_converts_from_every_layer() {
        fn tensor() -> Result<(), AtnnError> {
            Err(TensorError::ShapeMismatch { op: "matmul", lhs: (1, 2), rhs: (2, 1) })?;
            Ok(())
        }
        fn train() -> Result<(), AtnnError> {
            Err(TrainError::EmptyTrainingSet)?;
            Ok(())
        }
        fn config() -> Result<(), AtnnError> {
            atnn_core::TrainOptions::builder().epochs(0).build()?;
            Ok(())
        }
        fn fit() -> Result<(), AtnnError> {
            Err(FitError::EmptyTrainingSet)?;
            Ok(())
        }
        assert!(matches!(tensor().unwrap_err(), AtnnError::Tensor(_)));
        assert!(matches!(train().unwrap_err(), AtnnError::Train(_)));
        assert!(matches!(config().unwrap_err(), AtnnError::Config(_)));
        assert!(matches!(fit().unwrap_err(), AtnnError::Fit(_)));
    }

    #[test]
    fn display_and_source_expose_the_inner_error() {
        let e = AtnnError::from(TrainError::EmptyValidationSet);
        assert!(e.to_string().starts_with("train: "));
        assert!(e.source().is_some());
    }
}
