//! Minimal offline stand-in for the `proptest` crate (1.x API subset).
//!
//! Supports the surface this workspace's property tests use: the
//! [`proptest!`] macro with an optional `#![proptest_config(..)]` header,
//! `prop_assert!`/`prop_assert_eq!`/`prop_assert_ne!`/`prop_assume!`,
//! [`prop_oneof!`], [`strategy::Strategy`] with `prop_map`/`prop_flat_map`,
//! range/tuple/[`strategy::any`]/[`collection::vec`] strategies and
//! [`test_runner::ProptestConfig`].
//!
//! Differences from upstream, by design:
//! - **No shrinking.** A failing case panics with the assertion message and
//!   the case's RNG seed; rerunning the test reproduces it (generation is
//!   deterministic per test name), but the input is not minimized.
//! - Case count comes from `ProptestConfig::cases` or the `PROPTEST_CASES`
//!   environment variable (default 256).

pub mod test_runner {
    //! Test configuration, RNG and case-level error plumbing.

    /// Per-test configuration.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of accepted cases to run per test.
        pub cases: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            let cases =
                std::env::var("PROPTEST_CASES").ok().and_then(|v| v.parse().ok()).unwrap_or(256);
            ProptestConfig { cases }
        }
    }

    impl ProptestConfig {
        /// A config running exactly `cases` accepted cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    /// Why a single case did not pass.
    #[derive(Debug)]
    pub enum TestCaseError {
        /// `prop_assume!` filtered the input; the case does not count.
        Reject,
        /// An assertion failed.
        Fail(String),
    }

    impl TestCaseError {
        /// Builds a failure with a message.
        pub fn fail(msg: String) -> Self {
            TestCaseError::Fail(msg)
        }
    }

    /// Deterministic generation RNG (xoshiro256++).
    #[derive(Debug, Clone)]
    pub struct TestRng {
        s: [u64; 4],
    }

    impl TestRng {
        /// Seeds from a 64-bit value via SplitMix64.
        pub fn seed(seed: u64) -> Self {
            let mut sm = seed;
            let mut next = move || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            TestRng { s: [next(), next(), next(), next()] }
        }

        /// Seeds deterministically from a test name (FNV-1a).
        pub fn from_name(name: &str) -> Self {
            let mut h = 0xCBF2_9CE4_8422_2325u64;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
            TestRng::seed(h)
        }

        /// The next 64 random bits.
        #[inline]
        pub fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }

        /// A fresh per-case seed (printed on failure for reproduction).
        pub fn next_seed(&mut self) -> u64 {
            self.next_u64()
        }
    }
}

pub mod strategy {
    //! Value-generation strategies.

    use crate::test_runner::TestRng;
    use std::marker::PhantomData;
    use std::ops::Range;

    /// A recipe for generating values of one type.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draws one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;

        /// Transforms generated values.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        /// Chains into a dependent strategy.
        fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            S: Strategy,
            F: Fn(Self::Value) -> S,
        {
            FlatMap { inner: self, f }
        }
    }

    /// See [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn sample(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.sample(rng))
        }
    }

    /// See [`Strategy::prop_flat_map`].
    #[derive(Debug, Clone)]
    pub struct FlatMap<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
        type Value = S2::Value;
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            (self.f)(self.inner.sample(rng)).sample(rng)
        }
    }

    /// Always yields a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Full-range (ints, `bool`) standard distribution; see [`any`].
    #[derive(Debug, Clone)]
    pub struct Any<T>(PhantomData<T>);

    /// The standard strategy for `T` (full range for ints, fair coin for
    /// `bool`).
    pub fn any<T>() -> Any<T>
    where
        Any<T>: Strategy<Value = T>,
    {
        Any(PhantomData)
    }

    macro_rules! impl_any_int {
        ($($t:ty),*) => {$(
            impl Strategy for Any<$t> {
                type Value = $t;
                #[inline]
                fn sample(&self, rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    impl_any_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for Any<bool> {
        type Value = bool;
        #[inline]
        fn sample(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    #[inline]
    fn unit_f32(rng: &mut TestRng) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }

    #[inline]
    fn unit_f64(rng: &mut TestRng) -> f64 {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    macro_rules! impl_range_int {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                #[inline]
                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end.wrapping_sub(self.start)) as u64;
                    let hi = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                    self.start.wrapping_add(hi as $t)
                }
            }
        )*};
    }
    impl_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for Range<f32> {
        type Value = f32;
        #[inline]
        fn sample(&self, rng: &mut TestRng) -> f32 {
            assert!(self.start < self.end, "empty range strategy");
            self.start + (self.end - self.start) * unit_f32(rng)
        }
    }

    impl Strategy for Range<f64> {
        type Value = f64;
        #[inline]
        fn sample(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty range strategy");
            self.start + (self.end - self.start) * unit_f64(rng)
        }
    }

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    #[allow(non_snake_case)]
                    let ($($name,)+) = self;
                    ($($name.sample(rng),)+)
                }
            }
        };
    }
    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
    impl_tuple_strategy!(A, B, C, D, E);
    impl_tuple_strategy!(A, B, C, D, E, F);
    impl_tuple_strategy!(A, B, C, D, E, F, G);
    impl_tuple_strategy!(A, B, C, D, E, F, G, H);

    /// Object-safe sampling, used by [`OneOf`] to mix heterogeneous
    /// strategies that share a value type.
    pub trait DynStrategy<V> {
        /// Draws one value through the trait object.
        fn sample_dyn(&self, rng: &mut TestRng) -> V;
    }

    impl<S: Strategy> DynStrategy<S::Value> for S {
        fn sample_dyn(&self, rng: &mut TestRng) -> S::Value {
            self.sample(rng)
        }
    }

    /// Uniformly picks one of several strategies per case (the engine
    /// behind [`crate::prop_oneof!`]).
    pub struct OneOf<V> {
        arms: Vec<Box<dyn DynStrategy<V>>>,
    }

    impl<V> OneOf<V> {
        /// Builds from boxed arms; panics when empty.
        pub fn new(arms: Vec<Box<dyn DynStrategy<V>>>) -> Self {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            OneOf { arms }
        }
    }

    impl<V> Strategy for OneOf<V> {
        type Value = V;
        fn sample(&self, rng: &mut TestRng) -> V {
            let span = self.arms.len() as u64;
            let i = ((rng.next_u64() as u128 * span as u128) >> 64) as usize;
            self.arms[i].sample_dyn(rng)
        }
    }
}

pub mod collection {
    //! Collection strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// Length specifications accepted by [`vec`].
    pub trait IntoSizeRange {
        /// Lower (inclusive) and upper (exclusive) length bounds.
        fn bounds(&self) -> (usize, usize);
    }

    impl IntoSizeRange for usize {
        fn bounds(&self) -> (usize, usize) {
            (*self, *self + 1)
        }
    }

    impl IntoSizeRange for Range<usize> {
        fn bounds(&self) -> (usize, usize) {
            (self.start, self.end)
        }
    }

    impl IntoSizeRange for RangeInclusive<usize> {
        fn bounds(&self) -> (usize, usize) {
            (*self.start(), *self.end() + 1)
        }
    }

    /// Generates `Vec`s whose elements come from `element` and whose length
    /// is drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl IntoSizeRange) -> VecStrategy<S> {
        let (lo, hi) = size.bounds();
        assert!(lo < hi, "empty vec length range");
        VecStrategy { element, lo, hi }
    }

    /// See [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        lo: usize,
        hi: usize,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.hi - self.lo) as u64;
            let len = self.lo + ((rng.next_u64() as u128 * span as u128) >> 64) as usize;
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

pub mod prelude {
    //! The glob-import surface: `use proptest::prelude::*;`.
    pub use crate::collection;
    pub use crate::strategy::{any, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestRng};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Defines property tests: each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` running `config.cases` accepted cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_impl {
    ( ($cfg:expr)
      $( $(#[$meta:meta])*
         fn $name:ident ( $($pat:pat in $strat:expr),+ $(,)? ) $body:block
      )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                let strategies = ($($strat,)+);
                let mut seeder = $crate::test_runner::TestRng::from_name(stringify!($name));
                let mut accepted: u32 = 0;
                let mut rejected: u32 = 0;
                while accepted < config.cases {
                    let case_seed = seeder.next_seed();
                    let mut case_rng = $crate::test_runner::TestRng::seed(case_seed);
                    let ($($pat,)+) =
                        $crate::strategy::Strategy::sample(&strategies, &mut case_rng);
                    let outcome = (|| -> ::core::result::Result<(), $crate::test_runner::TestCaseError> {
                        $body
                        ::core::result::Result::Ok(())
                    })();
                    match outcome {
                        ::core::result::Result::Ok(()) => accepted += 1,
                        ::core::result::Result::Err($crate::test_runner::TestCaseError::Reject) => {
                            rejected += 1;
                            assert!(
                                rejected <= config.cases.saturating_mul(16),
                                "proptest '{}': too many rejected cases ({rejected})",
                                stringify!($name),
                            );
                        }
                        ::core::result::Result::Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                            panic!(
                                "proptest '{}' failed at case {} (seed {:#018x}):\n{}",
                                stringify!($name), accepted, case_seed, msg,
                            );
                        }
                    }
                }
            }
        )*
    };
}

/// Fails the current case when the condition is false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)*)),
            );
        }
    };
}

/// Fails the current case when the operands differ.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (lhs, rhs) = (&$a, &$b);
        $crate::prop_assert!(
            *lhs == *rhs,
            "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
            stringify!($a), stringify!($b), lhs, rhs
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (lhs, rhs) = (&$a, &$b);
        $crate::prop_assert!(*lhs == *rhs, $($fmt)*);
    }};
}

/// Fails the current case when the operands are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (lhs, rhs) = (&$a, &$b);
        $crate::prop_assert!(
            *lhs != *rhs,
            "assertion failed: {} != {}\n  both: {:?}",
            stringify!($a),
            stringify!($b),
            lhs
        );
    }};
}

/// Rejects the current case (it is regenerated and does not count) when the
/// condition is false.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::Reject);
        }
    };
}

/// Uniformly picks one of several strategies with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::OneOf::new(vec![
            $( ::std::boxed::Box::new($arm)
                as ::std::boxed::Box<dyn $crate::strategy::DynStrategy<_>> ),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_respect_bounds(x in 3usize..9, y in -2.5f32..2.5, z in -3i8..4) {
            prop_assert!((3..9).contains(&x));
            prop_assert!((-2.5..2.5).contains(&y));
            prop_assert!((-3..4).contains(&z));
        }

        #[test]
        fn vec_lengths_and_maps(v in collection::vec(0u32..10, 2..6)) {
            prop_assert!(v.len() >= 2 && v.len() < 6);
            prop_assert!(v.iter().all(|&x| x < 10));
        }

        #[test]
        fn flat_map_chains(m in (1usize..5).prop_flat_map(|n| collection::vec(0.0f64..1.0, n))) {
            prop_assert!(!m.is_empty() && m.len() < 5);
        }

        #[test]
        fn assume_rejects_without_failing(x in 0u64..100) {
            prop_assume!(x % 2 == 0);
            prop_assert_eq!(x % 2, 0);
        }

        #[test]
        fn oneof_covers_arms(x in prop_oneof![Just(1u8), Just(2u8), 5u8..7]) {
            prop_assert!(x == 1u8 || x == 2u8 || x == 5u8 || x == 6u8);
        }
    }

    #[test]
    fn generation_is_deterministic_per_name() {
        let mut a = TestRng::from_name("some_test");
        let mut b = TestRng::from_name("some_test");
        let mut c = TestRng::from_name("other_test");
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        assert_eq!(xs, (0..8).map(|_| b.next_u64()).collect::<Vec<_>>());
        assert_ne!(xs, (0..8).map(|_| c.next_u64()).collect::<Vec<_>>());
    }
}
