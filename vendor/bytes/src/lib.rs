//! Minimal offline stand-in for the `bytes` crate (1.x API subset).
//!
//! [`Bytes`] is a cheaply cloneable view into shared immutable storage with
//! cursor-style reads; [`BytesMut`] is an append-only builder that freezes
//! into [`Bytes`]. Only the little-endian get/put accessors the workspace's
//! serializers use are provided.

use std::ops::{Bound, RangeBounds};
use std::sync::Arc;

/// Shared immutable byte storage with a read cursor.
///
/// Reads through [`Buf`] consume from the front. Clones share storage.
#[derive(Clone)]
pub struct Bytes {
    data: Arc<[u8]>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// Wraps a static slice (copies it into shared storage; upstream's
    /// zero-copy optimization is irrelevant at these sizes).
    pub fn from_static(bytes: &'static [u8]) -> Self {
        Bytes::from(bytes.to_vec())
    }

    /// Unconsumed length.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// True when fully consumed.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// Returns a view of a sub-range of the *unconsumed* bytes, sharing
    /// storage. Panics when the range is out of bounds.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Bytes {
        let lo = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let hi = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => self.len(),
        };
        assert!(lo <= hi && hi <= self.len(), "slice {lo}..{hi} out of bounds of {}", self.len());
        Bytes { data: Arc::clone(&self.data), start: self.start + lo, end: self.start + hi }
    }

    fn as_bytes(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(data: Vec<u8>) -> Self {
        let len = data.len();
        Bytes { data: data.into(), start: 0, end: len }
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_bytes()
    }
}

impl std::ops::Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_bytes()
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_bytes() == other.as_bytes()
    }
}
impl Eq for Bytes {}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Bytes({} bytes)", self.len())
    }
}

/// Growable byte builder.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// An empty builder.
    pub fn new() -> Self {
        BytesMut::default()
    }

    /// An empty builder with reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut { data: Vec::with_capacity(cap) }
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Reserves capacity for at least `additional` more bytes.
    pub fn reserve(&mut self, additional: usize) {
        self.data.reserve(additional);
    }

    /// Converts the accumulated bytes into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.data)
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl From<&[u8]> for BytesMut {
    fn from(src: &[u8]) -> Self {
        BytesMut { data: src.to_vec() }
    }
}

impl std::ops::Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl std::ops::DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.data
    }
}

/// Cursor-style reads (subset of `bytes::Buf`).
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;

    /// Copies `dst.len()` bytes out, advancing the cursor. Panics when
    /// fewer bytes remain.
    fn copy_to_slice(&mut self, dst: &mut [u8]);

    /// Skips `n` bytes. Panics when fewer remain.
    fn advance(&mut self, n: usize);

    /// Reads one byte.
    fn get_u8(&mut self) -> u8 {
        let mut b = [0u8; 1];
        self.copy_to_slice(&mut b);
        b[0]
    }

    /// Reads a little-endian `u32`.
    fn get_u32_le(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_le_bytes(b)
    }

    /// Reads a little-endian `u64`.
    fn get_u64_le(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_le_bytes(b)
    }

    /// Reads a little-endian `f32`.
    fn get_f32_le(&mut self) -> f32 {
        f32::from_bits(self.get_u32_le())
    }

    /// Reads a little-endian `f64`.
    fn get_f64_le(&mut self) -> f64 {
        f64::from_bits(self.get_u64_le())
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(dst.len() <= self.remaining(), "copy_to_slice past end of buffer");
        dst.copy_from_slice(&self.data[self.start..self.start + dst.len()]);
        self.start += dst.len();
    }

    fn advance(&mut self, n: usize) {
        assert!(n <= self.remaining(), "advance past end of buffer");
        self.start += n;
    }
}

/// Append-style writes (subset of `bytes::BufMut`).
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Appends a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `f32`.
    fn put_f32_le(&mut self, v: f32) {
        self.put_u32_le(v.to_bits());
    }

    /// Appends a little-endian `f64`.
    fn put_f64_le(&mut self, v: f64) {
        self.put_u64_le(v.to_bits());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_all_widths() {
        let mut buf = BytesMut::new();
        buf.put_u8(7);
        buf.put_u32_le(0xDEAD_BEEF);
        buf.put_u64_le(u64::MAX - 3);
        buf.put_f32_le(-1.5);
        buf.put_f64_le(std::f64::consts::PI);
        buf.put_slice(b"tail");
        let mut b = buf.freeze();
        assert_eq!(b.remaining(), 1 + 4 + 8 + 4 + 8 + 4);
        assert_eq!(b.get_u8(), 7);
        assert_eq!(b.get_u32_le(), 0xDEAD_BEEF);
        assert_eq!(b.get_u64_le(), u64::MAX - 3);
        assert_eq!(b.get_f32_le(), -1.5);
        assert_eq!(b.get_f64_le(), std::f64::consts::PI);
        let mut tail = [0u8; 4];
        b.copy_to_slice(&mut tail);
        assert_eq!(&tail, b"tail");
        assert!(b.is_empty());
    }

    #[test]
    fn slice_shares_and_bounds() {
        let b = Bytes::from(vec![0, 1, 2, 3, 4, 5]);
        let s = b.slice(1..4);
        assert_eq!(s.as_ref(), &[1, 2, 3]);
        let whole = b.slice(..);
        assert_eq!(whole, b);
        // Cursor reads do not affect clones.
        let mut c = b.clone();
        c.advance(3);
        assert_eq!(c.as_ref(), &[3, 4, 5]);
        assert_eq!(b.len(), 6);
    }

    #[test]
    #[should_panic(expected = "past end")]
    fn overread_panics() {
        let mut b = Bytes::from(vec![1, 2]);
        let _ = b.get_u32_le();
    }
}
