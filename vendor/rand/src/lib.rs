//! Minimal offline stand-in for the `rand` crate (0.9 API subset).
//!
//! Provides [`rngs::StdRng`], [`Rng`] and [`SeedableRng`] with exactly the
//! methods this workspace calls: `seed_from_u64`, `random::<T>()` and
//! `random_range(lo..hi)`. The generator is xoshiro256++ seeded through
//! SplitMix64 — statistically solid for simulation/test workloads, but its
//! streams intentionally differ from upstream `rand`'s ChaCha12 `StdRng`.
//! Nothing in the workspace depends on upstream streams, only on
//! self-consistent determinism.

use std::ops::Range;

/// Seedable construction (subset of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Sampling interface (subset of `rand::Rng`).
pub trait Rng {
    /// The core 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Samples a value of a [`Standard`]-distributed type.
    #[inline]
    fn random<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Samples uniformly from a half-open range. Panics on an empty range.
    #[inline]
    fn random_range<T: UniformInRange>(&mut self, range: Range<T>) -> T
    where
        Self: Sized,
    {
        T::sample_in(self, range)
    }
}

/// Types with a "standard" distribution (full range for ints, `[0, 1)` for
/// floats, fair coin for `bool`).
pub trait Standard: Sized {
    /// Draws one standard sample.
    fn sample<R: Rng>(rng: &mut R) -> Self;
}

/// Types that can be sampled uniformly from a `Range`.
pub trait UniformInRange: Sized {
    /// Draws one sample in `range`.
    fn sample_in<R: Rng>(rng: &mut R, range: Range<Self>) -> Self;
}

#[inline]
fn unit_f32<R: Rng>(rng: &mut R) -> f32 {
    // 24 high bits -> [0, 1) with full f32 mantissa coverage.
    (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
}

#[inline]
fn unit_f64<R: Rng>(rng: &mut R) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            #[inline]
            fn sample<R: Rng>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for u128 {
    #[inline]
    fn sample<R: Rng>(rng: &mut R) -> Self {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

impl Standard for bool {
    #[inline]
    fn sample<R: Rng>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f32 {
    #[inline]
    fn sample<R: Rng>(rng: &mut R) -> Self {
        unit_f32(rng)
    }
}

impl Standard for f64 {
    #[inline]
    fn sample<R: Rng>(rng: &mut R) -> Self {
        unit_f64(rng)
    }
}

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl UniformInRange for $t {
            #[inline]
            fn sample_in<R: Rng>(rng: &mut R, range: Range<Self>) -> Self {
                assert!(range.start < range.end, "cannot sample empty range");
                // Two's-complement subtraction gives the span for signed
                // types too; the widening multiply maps 64 random bits onto
                // [0, span) with negligible bias for the spans used here.
                let span = (range.end.wrapping_sub(range.start)) as u64;
                let hi = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                range.start.wrapping_add(hi as $t)
            }
        }
    )*};
}
impl_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl UniformInRange for f32 {
    #[inline]
    fn sample_in<R: Rng>(rng: &mut R, range: Range<Self>) -> Self {
        assert!(range.start < range.end, "cannot sample empty range");
        range.start + (range.end - range.start) * unit_f32(rng)
    }
}

impl UniformInRange for f64 {
    #[inline]
    fn sample_in<R: Rng>(rng: &mut R, range: Range<Self>) -> Self {
        assert!(range.start < range.end, "cannot sample empty range");
        range.start + (range.end - range.start) * unit_f64(rng)
    }
}

/// Concrete generators.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// The workspace's default generator: xoshiro256++.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    #[inline]
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            StdRng { s }
        }
    }

    impl Rng for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_and_distinct_seeds() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(1);
        let mut c = StdRng::seed_from_u64(2);
        let xs: Vec<u64> = (0..16).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..16).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..16).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn unit_floats_in_range_and_spread() {
        let mut rng = StdRng::seed_from_u64(7);
        let n = 10_000;
        let mut sum = 0.0f64;
        for _ in 0..n {
            let x: f32 = rng.random();
            assert!((0.0..1.0).contains(&x));
            sum += x as f64;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean={mean}");
    }

    #[test]
    fn range_sampling_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut seen = [false; 7];
        for _ in 0..1000 {
            let i = rng.random_range(0usize..7);
            seen[i] = true;
        }
        assert!(seen.iter().all(|&s| s), "all buckets hit: {seen:?}");
        for _ in 0..1000 {
            let v = rng.random_range(-3i8..4);
            assert!((-3..4).contains(&v));
        }
    }
}
