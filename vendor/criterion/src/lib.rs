//! Minimal offline stand-in for the `criterion` crate (0.5 API subset).
//!
//! A thin wall-clock timing harness behind criterion's API shape:
//! warm-up, a fixed number of timed samples, and a one-line report per
//! benchmark. No statistical analysis, outlier detection or HTML reports.
//!
//! Set `CRITERION_JSON=/path/to/out.json` to additionally dump every
//! result of the process as a JSON array — the workspace's bench scripts
//! use this to record kernel numbers in version-controlled artifacts.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Work performed per iteration, used to report rates.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A benchmark identifier: function name plus a parameter rendering.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `new("matmul", 256)` renders as `matmul/256`.
    pub fn new(name: impl Into<String>, param: impl Display) -> Self {
        BenchmarkId { id: format!("{}/{}", name.into(), param) }
    }
}

/// Anything accepted as a benchmark id (`&str` or [`BenchmarkId`]).
pub trait IntoBenchmarkId {
    /// The rendered id.
    fn into_id(self) -> String;
}

impl IntoBenchmarkId for &str {
    fn into_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_id(self) -> String {
        self
    }
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_id(self) -> String {
        self.id
    }
}

/// One finished measurement.
#[derive(Debug, Clone)]
struct Record {
    name: String,
    mean_ns: f64,
    min_ns: f64,
    max_ns: f64,
    samples: usize,
    iters_per_sample: u64,
    throughput: Option<Throughput>,
}

/// The top-level harness handle.
#[derive(Debug, Default)]
pub struct Criterion {
    sample_size: Option<usize>,
    records: Vec<Record>,
}

const DEFAULT_SAMPLE_SIZE: usize = 30;
/// Total measurement budget per benchmark; sample count shrinks to fit
/// when single iterations are slow.
const TOTAL_BUDGET: Duration = Duration::from_millis(1500);
const WARMUP_BUDGET: Duration = Duration::from_millis(150);

impl Criterion {
    /// Overrides the default number of samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = Some(n);
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { criterion: self, name: name.into(), sample_size: None, throughput: None }
    }

    /// Runs one ungrouped benchmark.
    pub fn bench_function(&mut self, id: impl IntoBenchmarkId, mut f: impl FnMut(&mut Bencher)) {
        let sample_size = self.sample_size.unwrap_or(DEFAULT_SAMPLE_SIZE);
        self.run_one(id.into_id(), sample_size, None, &mut f);
    }

    fn run_one(
        &mut self,
        name: String,
        sample_size: usize,
        throughput: Option<Throughput>,
        f: &mut dyn FnMut(&mut Bencher),
    ) {
        let mut bencher = Bencher { sample_size, samples_ns: Vec::new(), iters_per_sample: 1 };
        f(&mut bencher);
        let Bencher { samples_ns, iters_per_sample, .. } = bencher;
        if samples_ns.is_empty() {
            return; // the closure never called iter()
        }
        let mean = samples_ns.iter().sum::<f64>() / samples_ns.len() as f64;
        let min = samples_ns.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = samples_ns.iter().cloned().fold(0.0f64, f64::max);
        let record = Record {
            name,
            mean_ns: mean,
            min_ns: min,
            max_ns: max,
            samples: samples_ns.len(),
            iters_per_sample,
            throughput,
        };
        report(&record);
        self.records.push(record);
    }
}

impl Drop for Criterion {
    fn drop(&mut self) {
        let Ok(path) = std::env::var("CRITERION_JSON") else { return };
        if self.records.is_empty() {
            return;
        }
        let mut out = String::from("[\n");
        for (i, r) in self.records.iter().enumerate() {
            let (kind, per_iter) = match r.throughput {
                Some(Throughput::Elements(n)) => ("elements", n),
                Some(Throughput::Bytes(n)) => ("bytes", n),
                None => ("none", 0),
            };
            let rate = if per_iter > 0 && r.mean_ns > 0.0 {
                per_iter as f64 / (r.mean_ns * 1e-9)
            } else {
                0.0
            };
            out.push_str(&format!(
                "  {{\"name\": \"{}\", \"mean_ns\": {:.1}, \"min_ns\": {:.1}, \"max_ns\": {:.1}, \
                 \"samples\": {}, \"iters_per_sample\": {}, \"throughput_kind\": \"{}\", \
                 \"throughput_per_iter\": {}, \"rate_per_sec\": {:.1}}}{}\n",
                r.name,
                r.mean_ns,
                r.min_ns,
                r.max_ns,
                r.samples,
                r.iters_per_sample,
                kind,
                per_iter,
                rate,
                if i + 1 == self.records.len() { "" } else { "," },
            ));
        }
        out.push_str("]\n");
        // Append-merge: concatenate arrays from multiple Criterion drops in
        // one process by rewriting the whole file each time.
        let merged = match std::fs::read_to_string(&path) {
            Ok(prev) if prev.trim_start().starts_with('[') && prev.trim_end().ends_with(']') => {
                let prev_body = prev.trim().trim_start_matches('[').trim_end_matches(']').trim();
                let new_body = out.trim().trim_start_matches('[').trim_end_matches(']').trim();
                if prev_body.is_empty() {
                    out.clone()
                } else {
                    format!("[\n  {},\n  {}\n]\n", prev_body.trim_end_matches(','), new_body)
                }
            }
            _ => out.clone(),
        };
        if let Err(e) = std::fs::write(&path, merged) {
            eprintln!("criterion: failed to write {path}: {e}");
        }
    }
}

fn human(ns: f64) -> String {
    if ns < 1e3 {
        format!("{ns:.1} ns")
    } else if ns < 1e6 {
        format!("{:.2} µs", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.2} ms", ns / 1e6)
    } else {
        format!("{:.3} s", ns / 1e9)
    }
}

fn report(r: &Record) {
    let thrpt = match r.throughput {
        Some(Throughput::Elements(n)) if r.mean_ns > 0.0 => {
            let rate = n as f64 / (r.mean_ns * 1e-9);
            format!("  thrpt: {:.3} Melem/s", rate / 1e6)
        }
        Some(Throughput::Bytes(n)) if r.mean_ns > 0.0 => {
            let rate = n as f64 / (r.mean_ns * 1e-9);
            format!("  thrpt: {:.3} MiB/s", rate / (1024.0 * 1024.0))
        }
        _ => String::new(),
    };
    println!(
        "{:<48} time: [{} {} {}]{}",
        r.name,
        human(r.min_ns),
        human(r.mean_ns),
        human(r.max_ns),
        thrpt
    );
}

/// A group of related benchmarks sharing sample size and throughput.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: Option<usize>,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Overrides the number of samples for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n);
        self
    }

    /// Declares per-iteration work for rate reporting.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    fn effective_sample_size(&self) -> usize {
        self.sample_size.or(self.criterion.sample_size).unwrap_or(DEFAULT_SAMPLE_SIZE)
    }

    /// Runs one benchmark in the group.
    pub fn bench_function(&mut self, id: impl IntoBenchmarkId, mut f: impl FnMut(&mut Bencher)) {
        let name = format!("{}/{}", self.name, id.into_id());
        let (n, t) = (self.effective_sample_size(), self.throughput);
        self.criterion.run_one(name, n, t, &mut f);
    }

    /// Runs one parameterized benchmark in the group.
    pub fn bench_with_input<I>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) {
        let name = format!("{}/{}", self.name, id.into_id());
        let (n, t) = (self.effective_sample_size(), self.throughput);
        self.criterion.run_one(name, n, t, &mut |b| f(b, input));
    }

    /// Ends the group (kept for API compatibility; no-op).
    pub fn finish(self) {}
}

/// Passed to the benchmark closure; times the routine.
pub struct Bencher {
    sample_size: usize,
    samples_ns: Vec<f64>,
    iters_per_sample: u64,
}

impl Bencher {
    /// Measures the routine: warm-up, then timed samples. Mean/min/max of
    /// the per-iteration time are recorded and reported by the harness.
    pub fn iter<R>(&mut self, mut routine: impl FnMut() -> R) {
        // Warm-up and per-iteration estimate.
        let warm_start = Instant::now();
        let mut warm_iters = 0u64;
        loop {
            black_box(routine());
            warm_iters += 1;
            if warm_start.elapsed() >= WARMUP_BUDGET || warm_iters >= 10 {
                break;
            }
        }
        let est_ns = (warm_start.elapsed().as_nanos() as f64 / warm_iters as f64).max(1.0);

        // Fit the requested samples into the budget; slow routines get
        // fewer samples rather than multi-minute runs.
        let budget_ns = TOTAL_BUDGET.as_nanos() as f64;
        let max_samples = ((budget_ns / est_ns) as usize).max(3);
        let samples = self.sample_size.min(max_samples);
        // Aim for ~1ms per sample so Instant overhead stays negligible.
        let iters = ((1e6 / est_ns) as u64).clamp(1, 1_000_000);

        self.iters_per_sample = iters;
        self.samples_ns.clear();
        for _ in 0..samples {
            let t = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            self.samples_ns.push(t.elapsed().as_nanos() as f64 / iters as f64);
        }
    }
}

/// Declares a benchmark group function. Both criterion forms are accepted:
/// a plain target list, or `name/config/targets` assignments.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Declares the bench `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn times_a_cheap_routine() {
        let mut c = Criterion::default().sample_size(5);
        let mut ran = 0u64;
        c.bench_function("noop", |b| {
            b.iter(|| {
                ran += 1;
                black_box(ran)
            })
        });
        assert_eq!(c.records.len(), 1);
        assert!(c.records[0].mean_ns > 0.0);
        assert!(ran > 0);
    }

    #[test]
    fn groups_and_ids_render() {
        let mut c = Criterion::default().sample_size(3);
        {
            let mut g = c.benchmark_group("grp");
            g.sample_size(3).throughput(Throughput::Elements(10));
            g.bench_function("plain", |b| b.iter(|| black_box(1 + 1)));
            g.bench_with_input(BenchmarkId::new("param", 42), &42, |b, &x| {
                b.iter(|| black_box(x * 2))
            });
            g.finish();
        }
        let names: Vec<&str> = c.records.iter().map(|r| r.name.as_str()).collect();
        assert_eq!(names, vec!["grp/plain", "grp/param/42"]);
    }
}
