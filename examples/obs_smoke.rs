//! CI smoke test for the observability pipeline: trains one tiny epoch
//! with a `JsonlSink` attached, replays the JSONL stream, and verifies
//! that at least one `EpochEnd` event round-trips. Run from
//! `scripts/check.sh`; exits non-zero on any broken link in the chain
//! (no file, unparseable line, no epoch event).

use std::io::BufRead;
use std::sync::Arc;

use atnn_repro::atnn::{Atnn, AtnnConfig, CtrTrainer, TrainOptions};
use atnn_repro::data::tmall::{TmallConfig, TmallDataset};
use atnn_repro::obs::{Event, JsonlSink};

fn main() {
    let path = std::env::temp_dir().join(format!("atnn_obs_smoke_{}.jsonl", std::process::id()));
    let _ = std::fs::remove_file(&path);

    {
        let sink = JsonlSink::append(&path).expect("open jsonl sink");
        let _guard = atnn_repro::obs::install_scoped(Arc::new(sink));
        let data = TmallDataset::generate(TmallConfig::tiny());
        let mut model = Atnn::new(AtnnConfig::scaled(), &data);
        let opts = TrainOptions::builder().epochs(1).build().expect("valid options");
        let report = CtrTrainer::new(opts).train(&mut model, &data, None).expect("training runs");
        atnn_repro::obs::flush();
        println!("trained {} epoch(s), events at {}", report.epochs.len(), path.display());
    }

    let file = std::fs::File::open(&path).expect("jsonl stream written");
    let mut total = 0usize;
    let mut epoch_ends = 0usize;
    let mut step_timings = 0usize;
    for line in std::io::BufReader::new(file).lines() {
        let line = line.expect("readable line");
        let event = Event::from_json(&line)
            .unwrap_or_else(|e| panic!("unparseable event line {line:?}: {e}"));
        total += 1;
        match event {
            Event::EpochEnd { model, epoch, loss_i, .. } => {
                assert_eq!(model, "ctr");
                assert!(loss_i.is_finite(), "epoch {epoch} loss is not finite");
                epoch_ends += 1;
            }
            Event::StepTiming { ns, rows, .. } => {
                assert!(ns > 0 && rows > 0);
                step_timings += 1;
            }
            _ => {}
        }
    }
    std::fs::remove_file(&path).ok();

    assert!(epoch_ends >= 1, "expected at least one EpochEnd event, parsed {total} events");
    assert!(step_timings >= 1, "expected step timings alongside the epoch event");
    println!("obs smoke OK: {total} events ({epoch_ends} epoch_end, {step_timings} step_timing)");
}
