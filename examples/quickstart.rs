//! Quickstart: train ATNN on a simulated Tmall log and score brand-new
//! items in O(1) against the stored mean user vector.
//!
//! Run with: `cargo run --release --example quickstart`

use atnn_repro::atnn::{
    evaluate_auc_full, evaluate_auc_generated, Atnn, AtnnConfig, CtrTrainer, PopularityIndex,
    TrainOptions,
};
use atnn_repro::data::dataset::Split;
use atnn_repro::data::tmall::{TmallConfig, TmallDataset};

fn main() {
    // 1. Simulate an e-commerce interaction log (users, items, clicks).
    let data = TmallDataset::generate(TmallConfig::small());
    println!(
        "dataset: {} users, {} items, {} interactions",
        data.num_users(),
        data.num_items(),
        data.interactions.len()
    );

    // 2. Cold-start split: the last 20% of items are "new arrivals" that
    //    never appear in training.
    let n_items = data.num_items() as u32;
    let first_new = n_items - n_items / 5;
    let item_of: Vec<u32> = data.interactions.iter().map(|i| i.item).collect();
    let split = Split::by_group(&item_of, |item| item >= first_new);

    // 3. Train ATNN with the paper's Algorithm 1 (alternating D/G steps).
    let mut model = Atnn::new(AtnnConfig::scaled(), &data);
    println!("model: {} trainable parameters", model.num_parameters());
    let opts = TrainOptions::builder().epochs(2).verbose(true).build().expect("valid options");
    let report =
        CtrTrainer::new(opts).train(&mut model, &data, Some(&split.train)).expect("training runs");
    let last = report.epochs.last().unwrap();
    println!("final losses: L_i={:.4} L_g={:.4} L_s={:.4}", last.loss_i, last.loss_g, last.loss_s);

    // 4. Evaluate on held-out new arrivals: the generator path needs no
    //    item statistics.
    let full = evaluate_auc_full(&model, &data, &split.test).unwrap();
    let cold = evaluate_auc_generated(&model, &data, &split.test).unwrap();
    println!("AUC with complete features : {full:.4}");
    println!("AUC cold-start (generator) : {cold:.4}");

    // 5. O(1) popularity serving: freeze the mean user vector of an active
    //    user group, then score any new arrival with one dot product.
    let user_group: Vec<u32> = (0..(data.num_users() / 2) as u32).collect();
    let index = PopularityIndex::build(&model, &data, &user_group);
    let new_items: Vec<u32> = (first_new..first_new + 5).collect();
    let scores = index.score_new_arrivals(&model, &data, &new_items);
    println!("\npopularity of five new arrivals (predicted vs ground truth):");
    for (item, score) in new_items.iter().zip(&scores) {
        println!(
            "  item {item}: predicted {score:.3}  |  true population CTR {:.3}",
            data.true_popularity(*item)
        );
    }
}
