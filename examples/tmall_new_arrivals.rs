//! The paper's headline e-commerce workflow end to end:
//! train ATNN → rank all new arrivals by popularity → launch them in the
//! market simulator → compare the quintiles' realized IPV/AtF/GMV, then
//! run the ATNN-vs-expert A/B test on time-to-5-sales.
//!
//! Run with: `cargo run --release --example tmall_new_arrivals`

use atnn_repro::atnn::{Atnn, AtnnConfig, CtrTrainer, PopularityIndex, TrainOptions};
use atnn_repro::data::dataset::Split;
use atnn_repro::data::market::{run_arm, simulate_launch, ExpertPolicy, MarketConfig};
use atnn_repro::data::tmall::{TmallConfig, TmallDataset};
use atnn_repro::metrics::quantile_lift;

fn main() {
    let data = TmallDataset::generate(TmallConfig::small());
    let n_items = data.num_items() as u32;
    let first_new = n_items - n_items / 5;
    let new_arrivals: Vec<u32> = (first_new..n_items).collect();
    let item_of: Vec<u32> = data.interactions.iter().map(|i| i.item).collect();
    let split = Split::by_group(&item_of, |item| item >= first_new);

    println!("training ATNN on {} warm interactions...", split.train.len());
    let mut model = Atnn::new(AtnnConfig::scaled(), &data);
    let opts = TrainOptions::builder().epochs(3).build().expect("valid options");
    CtrTrainer::new(opts).train(&mut model, &data, Some(&split.train)).expect("training runs");

    // Rank the new arrivals in O(1) per item.
    let group: Vec<u32> = (0..(data.num_users() / 2) as u32).collect();
    let index = PopularityIndex::build(&model, &data, &group);
    let scores = index.score_new_arrivals(&model, &data, &new_arrivals);

    // Launch everything and observe 30 market days.
    println!("simulating a 30-day launch of {} new arrivals...", new_arrivals.len());
    let outcomes = simulate_launch(&data, &new_arrivals, &MarketConfig::default());
    let telemetry: Vec<Vec<f64>> = outcomes
        .iter()
        .map(|o| vec![o.ipv_at(30) as f64, o.atf_at(30) as f64, o.gmv_at(30)])
        .collect();
    let lift = quantile_lift(&scores, &telemetry, 5).unwrap();

    println!("\n30-day outcomes by predicted-popularity quintile:");
    println!("{:>10}  {:>9}  {:>9}  {:>9}", "quintile", "IPV", "AtF", "GMV");
    for (i, g) in lift.groups.iter().enumerate() {
        println!(
            "{:>10}  {:>9.2}  {:>9.2}  {:>9.2}",
            format!("{}-{}%", i * 20, (i + 1) * 20),
            g[0],
            g[1],
            g[2]
        );
    }
    println!(
        "top/bottom IPV ratio: {:.2}x  (ordering holds: {})",
        lift.top_bottom_ratio(0),
        lift.is_monotone(0, 0.15)
    );

    // A/B test: ATNN selection vs expert selection.
    let top_k = new_arrivals.len() / 10;
    let expert_scores = ExpertPolicy::default().score(&data, &new_arrivals);
    let market = MarketConfig::default();
    let expert = run_arm(&data, &new_arrivals, &expert_scores, top_k, 5, &market);
    let atnn = run_arm(&data, &new_arrivals, &scores, top_k, 5, &market);
    println!("\nA/B test (top {top_k} selections, avg days to 5 sales):");
    println!(
        "  expert : {:.2} days (hit rate {:.0}%)",
        expert.avg_days_to_k_sales,
        expert.hit_rate * 100.0
    );
    println!(
        "  ATNN   : {:.2} days (hit rate {:.0}%)",
        atnn.avg_days_to_k_sales,
        atnn.hit_rate * 100.0
    );
    let improvement =
        (expert.avg_days_to_k_sales - atnn.avg_days_to_k_sales) / expert.avg_days_to_k_sales;
    println!("  improvement: {:+.2}%", improvement * 100.0);
}
