//! Preference-based user segmentation (the paper's §VI future-work item):
//! cluster users in the learned vector space, score new arrivals per
//! segment, and show how segment-level popularity differs from the global
//! blend — the basis for segment-targeted launches.
//!
//! Run with: `cargo run --release --example user_segments`

use atnn_repro::atnn::{
    pairwise_popularity, Atnn, AtnnConfig, CtrTrainer, GroupedPopularityIndex, PopularityIndex,
    TrainOptions,
};
use atnn_repro::data::tmall::{TmallConfig, TmallDataset};
use atnn_repro::tensor::Rng64;

fn main() {
    let data = TmallDataset::generate(TmallConfig::small());
    let mut model = Atnn::new(AtnnConfig::scaled(), &data);
    println!("training...");
    let opts = TrainOptions::builder().epochs(2).build().expect("valid options");
    CtrTrainer::new(opts).train(&mut model, &data, None).expect("training runs");

    let user_group: Vec<u32> = (0..(data.num_users() / 2) as u32).collect();
    let new_items: Vec<u32> = (3_500..3_600).collect();
    let mut rng = Rng64::seed_from_u64(2024);

    // How faithful is each serving approximation to the exact O(N_users)
    // pairwise popularity?
    let exact = pairwise_popularity(&model, &data, &new_items, &user_group);
    let single = PopularityIndex::build(&model, &data, &user_group);
    let single_scores = single.score_new_arrivals(&model, &data, &new_items);
    println!("\nfidelity to exact pairwise popularity (mean abs deviation):");
    let mad = |scores: &[f32]| {
        scores.iter().zip(&exact).map(|(&a, &b)| (a - b).abs() as f64).sum::<f64>()
            / exact.len() as f64
    };
    println!("  single mean vector (k=1) : {:.5}", mad(&single_scores));
    for k in [4usize, 16, 64] {
        let grouped = GroupedPopularityIndex::build(&model, &data, &user_group, k, &mut rng);
        let scores = grouped.score_new_arrivals(&model, &data, &new_items);
        println!("  {k:>2} preference clusters   : {:.5}", mad(&scores));
    }

    // Segment-level view: the same item can be hot for one segment and
    // cold for another.
    let grouped = GroupedPopularityIndex::build(&model, &data, &user_group, 6, &mut rng);
    println!("\nper-segment popularity of five new arrivals (6 segments):");
    println!("{:>8}  {:>7}  per-segment scores", "item", "blended");
    let vectors = model.item_vectors_generated(&data.encode_item_profiles(&new_items));
    let mut most_polarizing: Vec<(usize, f32)> = (0..new_items.len())
        .map(|i| {
            let per = grouped.per_cluster_scores(vectors.row(i));
            let spread = per.iter().cloned().fold(f32::MIN, f32::max)
                - per.iter().cloned().fold(f32::MAX, f32::min);
            (i, spread)
        })
        .collect();
    most_polarizing.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap());
    for &(i, spread) in most_polarizing.iter().take(5) {
        let per = grouped.per_cluster_scores(vectors.row(i));
        let per_str: Vec<String> = per.iter().map(|s| format!("{s:.2}")).collect();
        println!(
            "{:>8}  {:>7.3}  [{}]  (spread {:.2})",
            new_items[i],
            grouped.score_vector(vectors.row(i)),
            per_str.join(" "),
            spread
        );
    }
    println!(
        "\nsegment weights: {:?}",
        grouped.weights().iter().map(|w| format!("{w:.2}")).collect::<Vec<_>>()
    );
}
