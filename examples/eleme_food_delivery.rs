//! The paper's §V food-delivery extension: multi-task ATNN predicting
//! VpPV and GMV for brand-new restaurants, compared against a TNN-DCN
//! baseline and a human-expert recruiting policy.
//!
//! Run with: `cargo run --release --example eleme_food_delivery`

use atnn_repro::atnn::{evaluate_mae_cold, AtnnConfig, MultiTaskAtnn, MultiTaskTrainOptions};
use atnn_repro::data::dataset::Split;
use atnn_repro::data::eleme::{ElemeConfig, ElemeDataset, ElemeExpertPolicy};
use atnn_repro::tensor::Rng64;

fn main() {
    let data = ElemeDataset::generate(ElemeConfig::small());
    let mut rng = Rng64::seed_from_u64(99);
    let split = Split::random(data.num_restaurants(), 0.2, &mut rng);
    println!(
        "dataset: {} restaurants in {} location groups ({} train / {} new sign-ups)",
        data.num_restaurants(),
        data.num_groups(),
        split.train.len(),
        split.test.len()
    );

    // Train the multi-task ATNN (Algorithm 2) and the TNN-DCN baseline.
    let opts = MultiTaskTrainOptions { epochs: 12, ..Default::default() };
    println!("training multi-task ATNN...");
    let mut atnn = MultiTaskAtnn::new(AtnnConfig::scaled(), &data, &split.train);
    atnn.train(&data, &split.train, &opts);
    println!("training TNN-DCN baseline...");
    let mut tnn = MultiTaskAtnn::new(AtnnConfig::tnn_dcn(), &data, &split.train);
    tnn.train(&data, &split.train, &opts);

    // Offline comparison (paper Table IV): MAE on cold restaurants.
    let (atnn_vppv, atnn_gmv) = evaluate_mae_cold(&atnn, &data, &split.test);
    let means = data.mean_restaurant_stats(&split.train);
    let (tnn_vp, tnn_gp) = tnn.predict_cold_imputed(&data, &split.test, &means);
    let vppv_true: Vec<f32> = split.test.iter().map(|&r| data.vppv(r)).collect();
    let gmv_true: Vec<f32> = split.test.iter().map(|&r| data.gmv(r)).collect();
    let tnn_vppv = atnn_repro::metrics::mae(&tnn_vp, &vppv_true).unwrap();
    let tnn_gmv = atnn_repro::metrics::mae(&tnn_gp, &gmv_true).unwrap();
    println!("\ncold-start MAE (lower is better):");
    println!("  TNN-DCN : VpPV {tnn_vppv:.4}  GMV {tnn_gmv:.3}");
    println!("  ATNN    : VpPV {atnn_vppv:.4}  GMV {atnn_gmv:.3}");

    // Online-style comparison (paper Table V): recruit the top 15% of new
    // sign-ups and look at their realized VpPV / GMV.
    let pool = &split.test;
    let k = pool.len() * 15 / 100;
    let (vp, gp) = atnn.predict_cold(&data, pool);
    let mut by_model: Vec<usize> = (0..pool.len()).collect();
    by_model.sort_by(|&a, &b| (vp[b] + gp[b]).partial_cmp(&(vp[a] + gp[a])).unwrap());
    let expert_scores = ElemeExpertPolicy::default().score(&data, pool);
    let mut by_expert: Vec<usize> = (0..pool.len()).collect();
    by_expert.sort_by(|&a, &b| expert_scores[b].partial_cmp(&expert_scores[a]).unwrap());

    let realized = |picked: &[usize]| {
        let vppv: f64 = picked.iter().map(|&i| data.vppv(pool[i]) as f64).sum::<f64>() / k as f64;
        let gmv: f64 = picked.iter().map(|&i| data.gmv(pool[i]) as f64).sum::<f64>() / k as f64;
        (vppv, gmv)
    };
    let (ev, eg) = realized(&by_expert[..k]);
    let (mv, mg) = realized(&by_model[..k]);
    println!("\nrecruiting the top {k} new sign-ups — realized 30-day outcomes:");
    println!("  experts : VpPV {ev:.4}  GMV {eg:.2}");
    println!("  ATNN    : VpPV {mv:.4}  GMV {mg:.2}");
    println!(
        "  improvement: VpPV {:+.1}%  GMV {:+.1}%",
        (mv - ev) / ev * 100.0,
        (mg - eg) / eg * 100.0
    );
}
