//! Production-shaped serving: train, checkpoint, restore, publish a
//! popularity index, and serve concurrent scoring traffic while a
//! background refresh hot-swaps the index — the deployment shape of the
//! paper's §IV-D real-time data engine.
//!
//! Run with: `cargo run --release --example popularity_serving`

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use atnn_repro::atnn::{Atnn, AtnnConfig, CtrTrainer, PopularityIndex, ServingIndex, TrainOptions};
use atnn_repro::data::tmall::{TmallConfig, TmallDataset};

fn main() {
    let data = TmallDataset::generate(TmallConfig::small());
    let mut model = Atnn::new(AtnnConfig::scaled(), &data);
    println!("training...");
    let opts = TrainOptions::builder().epochs(2).build().expect("valid options");
    CtrTrainer::new(opts).train(&mut model, &data, None).expect("training runs");

    // Checkpoint and restore: the serving fleet loads weights produced by
    // the training job.
    let blob = model.save();
    println!("checkpoint: {} bytes for {} parameters", blob.len(), model.num_parameters());
    let mut serving_model = Atnn::new(AtnnConfig::scaled(), &data);
    serving_model.load(blob).expect("restore checkpoint");

    // Publish the initial index from user group A.
    let group_a: Vec<u32> = (0..(data.num_users() / 2) as u32).collect();
    let index =
        Arc::new(ServingIndex::new(PopularityIndex::build(&serving_model, &data, &group_a)));

    // Materialize generated item vectors for a shard of new arrivals —
    // this is the per-item O(1) state the scorers work from.
    let items: Vec<u32> = (0..512).collect();
    let vectors = serving_model.item_vectors_generated(&data.encode_item_profiles(&items));

    // Concurrent scorers + one refresher that republishes the index built
    // from user group B halfway through.
    let total_scored = Arc::new(AtomicU64::new(0));
    std::thread::scope(|scope| {
        for worker in 0..4 {
            let index = Arc::clone(&index);
            let vectors = &vectors;
            let total_scored = Arc::clone(&total_scored);
            scope.spawn(move || {
                let mut checksum = 0.0f64;
                for round in 0..200 {
                    for i in 0..vectors.rows() {
                        checksum += index.score(vectors.row(i)) as f64;
                    }
                    total_scored.fetch_add(vectors.rows() as u64, Ordering::Relaxed);
                    if round == 0 && worker == 0 {
                        println!("worker {worker}: first-round checksum {checksum:.1}");
                    }
                }
            });
        }
        let index = Arc::clone(&index);
        let serving_model = &serving_model;
        let data = &data;
        scope.spawn(move || {
            let group_b: Vec<u32> =
                ((data.num_users() / 2) as u32..data.num_users() as u32).collect();
            let fresh = PopularityIndex::build(serving_model, data, &group_b);
            index.publish(fresh);
            println!("refresher: published index from user group B");
        });
    });

    println!(
        "served {} scores across 4 workers with one live index swap",
        total_scored.load(Ordering::Relaxed)
    );

    // Show the end product: the top-5 new arrivals under the final index.
    let final_index = index.snapshot();
    let mut ranked: Vec<(u32, f32)> =
        items.iter().map(|&it| (it, final_index.score_vector(vectors.row(it as usize)))).collect();
    ranked.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap());
    println!("\ntop new arrivals by served popularity:");
    for (item, score) in ranked.iter().take(5) {
        println!("  item {item}: {score:.3} (true {:.3})", data.true_popularity(*item));
    }
}
